"""Columnar, memory-mapped snapshot store — the out-of-core tier.

NPZ archives (``serialize.py``) are compressed zip members: loading one
decompresses and *copies* every array into RAM, and updating one rewrites
the whole file.  That caps corpus size at memory and makes every
compaction O(corpus).  This module stores the same flat structured
arrays — trajectories plus an offsets table, node attributes, sketch
rows, background tables — as raw ``.npy`` files that ``numpy`` can
memory-map read-only, so

- *cold open* is O(1): ``open_database()`` reads one small JSON manifest
  and stats the data files; trajectory bytes stay on disk until a query
  faults them in;
- multiple shard *processes* map the same file and share page cache,
  with zero-copy views instead of per-process copies;
- *compaction is incremental*: each ``append()`` writes one new delta
  segment plus a tombstone bitmap — O(delta) bytes — and a background
  merge folds segments back into a fresh base only once the dead-row
  fraction crosses a threshold (amortized, LSM-style).

Layout — one directory per store, conventionally ``<name>.strg/``::

    corpus.strg/
      manifest.json          <- commit point (atomically replaced last)
      tombstones-000002.npy  <- packed-bit dead-row bitmap (versioned)
      seg-000000/            <- base segment: full tree snapshot
        meta.json            <- index config, clip refs, sketch meta
        og_values.npy        <- (sum n_i, d) trajectory rows
        og_offsets.npy       <- int64 offsets table into og_values
        og_frames.npy  og_labels.npy  keys.npy  leaf_of_og.npy
        centroid_values.npy  centroid_offsets.npy  cluster_root.npy
        bg_*.npy  sketch_*.npy
      seg-000001/            <- delta segment: ordered op log + payloads
        meta.json            <- {"ops": [["i", bg] | ["d", row], ...]}
        og_values.npy  og_offsets.npy  ...  bg_*.npy

Commit protocol.  A segment directory is written completely (every file
fsynced) *before* the manifest is atomically replaced to reference it —
mirroring ``_atomic_savez``.  A crash mid-append leaves an orphan
segment directory and the previous manifest: the store opens at its
last committed state and the orphan is garbage-collected by the next
append.  The manifest records byte size and SHA-256 per file; opening
verifies sizes (catching truncation in O(#files) stats — full hashing
would defeat the O(1) open and is available via :meth:`verify`).

Replay model.  The base segment is a full tree snapshot
(:func:`~repro.storage.serialize.index_to_arrays`); each delta is the
ordered write batch of one ``LiveIndex.compact()`` — inserts carrying
their payload rows and background ordinal, deletes naming the global
row ordinal they kill.  Loading materializes the base and replays the
deltas through the same deterministic ``insert()``/``delete()`` code
path a live index evolved through, so a reopened store answers
knn/range queries bit-identically to the process that wrote it.

Row ordinals.  Every insert — base rows in leaf-iteration order, then
delta inserts in op order — gets the next global ordinal.  og_ids are
*not* stable across processes (fresh ids are minted on load), so the
on-disk log never mentions them; the store keeps an in-process
``og_id -> ordinal`` map, rebuilt on every ``write_index``/``load_index``.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import shutil
import tempfile
import threading
from types import SimpleNamespace
from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import (
    IndexCorruptionError,
    IndexStateError,
    InvalidParameterError,
    StorageError,
)
from repro.observability import OBS
from repro.resilience.faults import maybe_fail, maybe_truncate
from repro.storage.serialize import (
    _pack_backgrounds,
    _pack_ragged,
    _unpack_backgrounds,
    _unpack_ragged,
    index_from_arrays,
    index_to_arrays,
    leaf_ogs,
)

logger = logging.getLogger(__name__)

COLUMNAR_FORMAT = "strg-columnar"
COLUMNAR_VERSION = 1
MANIFEST_NAME = "manifest.json"
STORE_SUFFIX = ".strg"

_KIND_INDEX = "index"
_KIND_SHARDED = "sharded"


def columnar_path(path: str | os.PathLike) -> str:
    """Normalize a store path the way :func:`npz_path` does for NPZ.

    Appends ``.strg`` unless the path already carries the suffix or
    already names a store directory (has a manifest), so suffix-less
    ``save(path)`` / ``load(path)`` round-trips keep working.
    """
    p = os.fspath(path)
    if p.endswith(STORE_SUFFIX):
        return p
    if os.path.isfile(os.path.join(p, MANIFEST_NAME)):
        return p
    return p + STORE_SUFFIX


def is_columnar_store(path: str | os.PathLike) -> bool:
    """True when ``path`` (after normalization) holds a store manifest."""
    return os.path.isfile(os.path.join(columnar_path(path), MANIFEST_NAME))


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _fsync_write(path: str, writer) -> None:
    """Write ``path`` via ``writer(fh)`` and fsync before closing."""
    with open(path, "wb") as fh:
        writer(fh)
        fh.flush()
        os.fsync(fh.fileno())


def _file_entry(path: str) -> dict[str, Any]:
    return {"bytes": os.path.getsize(path), "sha256": _sha256_file(path)}


class ColumnarStore:
    """One columnar store directory (monolithic index or sharded).

    Thread-safe for writers: ``write_index``/``append``/``merge``
    serialize on an internal lock.  Readers (``load_index``) are
    lock-free — they only ever see committed manifests.
    """

    format = "columnar"
    supports_mmap = True

    #: Fold segments into a fresh base once this fraction of rows is dead.
    merge_dead_fraction = 0.25
    #: ... or once this many segments accumulate (keeps replay bounded).
    merge_max_segments = 64

    def __init__(self, path: str | os.PathLike, *, normalize: bool = True):
        self.path = columnar_path(path) if normalize else os.fspath(path)
        self._mutate_lock = threading.RLock()
        self._merge_thread: threading.Thread | None = None
        self._reset_rows()

    def _reset_rows(self) -> None:
        self._row_of: dict[int, int] = {}   # live og_id -> global ordinal
        self._rows = 0                       # rows ever appended
        self._dead: set[int] = set()         # tombstoned ordinals
        self._bound = False                  # row map reflects disk state

    # -- manifest ---------------------------------------------------------

    @property
    def _manifest_path(self) -> str:
        return os.path.join(self.path, MANIFEST_NAME)

    def exists(self) -> bool:
        """Whether a committed manifest is present."""
        return os.path.isfile(self._manifest_path)

    @property
    def supports_append(self) -> bool:
        """Sharded stores are write/load-only (no incremental append)."""
        if not self.exists():
            return True
        try:
            return self._read_manifest()["kind"] == _KIND_INDEX
        except StorageError:
            return True

    def _read_manifest(self) -> dict[str, Any]:
        maybe_fail("storage.read", path=self._manifest_path)
        try:
            with open(self._manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except FileNotFoundError as exc:
            if os.path.isdir(self.path):
                # The store directory exists but never reached its commit
                # point: an interrupted first write (or a stray empty
                # directory).  Data loss, not a missing store.
                raise IndexCorruptionError(
                    f"store directory {self.path} has no committed "
                    "manifest (empty or partially written)",
                    details={"path": self.path,
                             "missing": MANIFEST_NAME,
                             "contents": sorted(os.listdir(self.path))[:16]},
                ) from exc
            raise StorageError(
                f"cannot read {self._manifest_path}: {exc}") from exc
        except (OSError, json.JSONDecodeError) as exc:
            raise IndexCorruptionError(
                f"corrupt store manifest {self._manifest_path}: {exc}",
                details={"path": self._manifest_path,
                         "cause": type(exc).__name__},
            ) from exc
        if manifest.get("format") != COLUMNAR_FORMAT:
            raise IndexCorruptionError(
                f"{self._manifest_path} is not a columnar store manifest "
                f"(format={manifest.get('format')!r})",
                details={"path": self._manifest_path,
                         "format": manifest.get("format")},
            )
        version = manifest.get("format_version")
        if version != COLUMNAR_VERSION:
            raise IndexCorruptionError(
                f"unsupported columnar format version {version} in "
                f"{self._manifest_path} (supported: {COLUMNAR_VERSION})",
                details={"path": self._manifest_path, "version": version,
                         "supported": COLUMNAR_VERSION},
            )
        kind = manifest.get("kind")
        if kind == _KIND_SHARDED:
            required = ("num_shards", "shards", "files")
        else:
            required = ("kind", "segments", "next_segment",
                        "rows_total", "rows_dead")
        missing = [key for key in required if key not in manifest]
        if missing:
            raise IndexCorruptionError(
                f"incomplete store manifest {self._manifest_path}: "
                f"missing keys {missing} (partially written?)",
                details={"path": self._manifest_path, "kind": kind,
                         "missing": missing},
            )
        return manifest

    def manifest(self) -> dict[str, Any]:
        """The committed manifest, validated (a fresh copy per call)."""
        return self._read_manifest()

    def _check_sizes(self, manifest: dict[str, Any]) -> None:
        """O(#files) truncation check: stat sizes against the manifest."""
        for rel, entry in self._iter_file_entries(manifest):
            target = os.path.join(self.path, rel)
            try:
                actual = os.path.getsize(target)
            except OSError as exc:
                raise IndexCorruptionError(
                    f"store file missing: {target}: {exc}",
                    details={"path": target, "cause": type(exc).__name__},
                ) from exc
            if actual != entry["bytes"]:
                raise IndexCorruptionError(
                    f"truncated store file {target}: "
                    f"{actual} bytes on disk, manifest says {entry['bytes']}",
                    details={"path": target, "actual": actual,
                             "expected": entry["bytes"]},
                )

    def _iter_file_entries(self, manifest: dict[str, Any]
                           ) -> Iterable[tuple[str, dict[str, Any]]]:
        for segment in manifest.get("segments", []):
            for name, entry in segment["files"].items():
                yield os.path.join(segment["name"], name), entry
        for name, entry in manifest.get("files", {}).items():
            yield name, entry
        tomb = manifest.get("tombstones")
        if tomb:
            yield tomb["name"], tomb

    def _commit_manifest(self, manifest: dict[str, Any],
                         fault_point: str) -> None:
        """Atomically replace the manifest — the single commit point."""
        os.makedirs(self.path, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.path, prefix=MANIFEST_NAME + ".",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(manifest, fh, indent=1, sort_keys=True,
                          default=str)
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            maybe_fail(fault_point, path=self._manifest_path)
            os.replace(tmp, self._manifest_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            raise

    # -- segment I/O ------------------------------------------------------

    def _write_segment(self, name: str, arrays: dict[str, np.ndarray],
                       meta: dict[str, Any]) -> dict[str, Any]:
        """Write one complete segment directory; return its manifest entry.

        The directory is fully written and fsynced before the caller
        commits a manifest referencing it.  A pre-existing directory of
        the same name is an orphan from a crashed append — by definition
        unreferenced — and is removed first.
        """
        directory = os.path.join(self.path, name)
        if os.path.isdir(directory):
            logger.info("removing orphan segment %s", directory)
            shutil.rmtree(directory)
        os.makedirs(directory)
        files: dict[str, dict[str, Any]] = {}
        for column, array in arrays.items():
            filename = f"{column}.npy"
            target = os.path.join(directory, filename)
            _fsync_write(target,
                         lambda fh, a=array: np.save(fh, np.ascontiguousarray(a)))
            files[filename] = _file_entry(target)
        meta_target = os.path.join(directory, "meta.json")
        payload = json.dumps(meta, sort_keys=True, default=str)
        _fsync_write(meta_target, lambda fh: fh.write(payload.encode()))
        files["meta.json"] = _file_entry(meta_target)
        return {"name": name, "files": files}

    def _load_segment_arrays(self, segment: dict[str, Any],
                             mmap: bool) -> dict[str, np.ndarray]:
        directory = os.path.join(self.path, segment["name"])
        arrays: dict[str, np.ndarray] = {}
        mode = "r" if mmap else None
        for filename in segment["files"]:
            if not filename.endswith(".npy"):
                continue
            target = os.path.join(directory, filename)
            try:
                arrays[filename[:-len(".npy")]] = np.load(
                    target, mmap_mode=mode, allow_pickle=False)
            except (OSError, ValueError, EOFError) as exc:
                raise IndexCorruptionError(
                    f"corrupt store file {target}: {exc}",
                    details={"path": target, "cause": type(exc).__name__},
                ) from exc
        return arrays

    def _load_columns(self, segment: dict[str, Any],
                      names: Sequence[str], mmap: bool
                      ) -> dict[str, np.ndarray]:
        """Load specific columns of one segment (not the whole directory).

        The row-addressed read path uses this so touching one row never
        materializes unrelated columns: with ``mmap=True`` each file is
        opened as a read-only view, with ``mmap=False`` only the named
        columns are copied into RAM.
        """
        directory = os.path.join(self.path, segment["name"])
        mode = "r" if mmap else None
        out: dict[str, np.ndarray] = {}
        for name in names:
            filename = f"{name}.npy"
            if filename not in segment["files"]:
                raise IndexCorruptionError(
                    f"segment {segment['name']} of {self.path} has no "
                    f"column {filename}",
                    details={"path": directory, "column": filename},
                )
            target = os.path.join(directory, filename)
            try:
                out[name] = np.load(target, mmap_mode=mode,
                                    allow_pickle=False)
            except (OSError, ValueError, EOFError) as exc:
                raise IndexCorruptionError(
                    f"corrupt store file {target}: {exc}",
                    details={"path": target, "cause": type(exc).__name__},
                ) from exc
        return out

    def _read_segment_meta(self, segment: dict[str, Any]) -> dict[str, Any]:
        target = os.path.join(self.path, segment["name"], "meta.json")
        try:
            with open(target, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise IndexCorruptionError(
                f"corrupt segment meta {target}: {exc}",
                details={"path": target, "cause": type(exc).__name__},
            ) from exc

    # -- tombstones -------------------------------------------------------

    def _write_tombstones(self, ordinal: int, rows: int,
                          dead: set[int]) -> dict[str, Any]:
        name = f"tombstones-{ordinal:06d}.npy"
        bits = np.zeros(rows, dtype=bool)
        if dead:
            bits[np.fromiter(dead, dtype=np.int64)] = True
        target = os.path.join(self.path, name)
        _fsync_write(target, lambda fh: np.save(fh, np.packbits(bits)))
        entry = _file_entry(target)
        entry["name"] = name
        entry["rows"] = rows
        return entry

    def _load_tombstones(self, manifest: dict[str, Any]) -> set[int]:
        tomb = manifest.get("tombstones")
        if not tomb:
            return set()
        target = os.path.join(self.path, tomb["name"])
        try:
            packed = np.load(target, allow_pickle=False)
        except (OSError, ValueError, EOFError) as exc:
            raise IndexCorruptionError(
                f"corrupt tombstone bitmap {target}: {exc}",
                details={"path": target, "cause": type(exc).__name__},
            ) from exc
        bits = np.unpackbits(packed, count=int(tomb["rows"]))
        return {int(i) for i in np.flatnonzero(bits)}

    def _collect_garbage(self, manifest: dict[str, Any]) -> None:
        """Drop files/directories the committed manifest no longer names."""
        keep = {segment["name"] for segment in manifest.get("segments", [])}
        keep.update(manifest.get("shards", []))
        tomb = manifest.get("tombstones")
        if tomb:
            keep.add(tomb["name"])
        keep.update(manifest.get("files", {}))
        keep.add(MANIFEST_NAME)
        try:
            entries = os.listdir(self.path)
        except OSError:  # pragma: no cover - store dir vanished
            return
        for entry in entries:
            if entry in keep or entry.endswith(".tmp"):
                continue
            target = os.path.join(self.path, entry)
            try:
                if os.path.isdir(target):
                    shutil.rmtree(target)
                else:
                    os.unlink(target)
            except OSError:  # pragma: no cover - best-effort cleanup
                logger.warning("could not collect garbage %s", target)

    # -- full write (base segment) ---------------------------------------

    def write_index(self, index: Any) -> str:
        """Write ``index`` as a fresh store (one base segment, no deltas).

        Handles both monolithic ``STRGIndex`` and ``ShardedIndex`` (the
        latter becomes a top-level manifest plus one nested store per
        shard, shards written first, manifest last).  Also serves as the
        *merge* target: rewriting an existing store folds all segments
        into a new base and garbage-collects the old ones.  Returns the
        store path.
        """
        with self._mutate_lock, OBS.span("storage.columnar.write"):
            if getattr(index, "shards", None) is not None:
                return self._write_sharded(index)
            arrays, meta = index_to_arrays(index)
            manifest = self._read_manifest() if self.exists() else None
            if manifest is not None and manifest["kind"] != _KIND_INDEX:
                ordinal = 0
            else:
                ordinal = manifest["next_segment"] if manifest else 0
            os.makedirs(self.path, exist_ok=True)
            name = f"seg-{ordinal:06d}"
            rows = len(meta["refs"])
            segment = self._write_segment(name, arrays, dict(meta, kind="base",
                                                             rows=rows))
            segment.update(kind="base", rows=rows)
            self._commit_manifest({
                "format": COLUMNAR_FORMAT,
                "format_version": COLUMNAR_VERSION,
                "kind": _KIND_INDEX,
                "next_segment": ordinal + 1,
                "rows_total": rows,
                "rows_dead": 0,
                "segments": [segment],
                "tombstones": None,
            }, "storage.write")
            self._collect_garbage(self._read_manifest())
            self._row_of = {og.og_id: i
                            for i, (og, _) in enumerate(leaf_ogs(index))}
            self._rows = rows
            self._dead = set()
            self._bound = True
            OBS.count("storage.columnar.writes")
            return self.path

    def _write_sharded(self, index: Any) -> str:
        os.makedirs(self.path, exist_ok=True)
        shard_names = []
        for ordinal, shard in enumerate(index.shards):
            name = f"shard-{ordinal}"
            shard_store = ColumnarStore(os.path.join(self.path, name),
                                        normalize=False)
            shard_store.write_index(shard)
            shard_names.append(name)
        config = index.config
        pivots = index.pivots if index.pivots is not None else []
        pivot_flat, pivot_offsets = _pack_ragged(list(pivots))
        files = {}
        for column, array in (("pivot_values", pivot_flat),
                              ("pivot_offsets", pivot_offsets)):
            target = os.path.join(self.path, f"{column}.npy")
            _fsync_write(target,
                         lambda fh, a=array: np.save(fh, np.ascontiguousarray(a)))
            files[f"{column}.npy"] = _file_entry(target)
        self._commit_manifest({
            "format": COLUMNAR_FORMAT,
            "format_version": COLUMNAR_VERSION,
            "kind": _KIND_SHARDED,
            "num_shards": len(index.shards),
            "has_pivots": index.pivots is not None,
            "serving_config": {
                "num_shards": config.num_shards,
                "placement": config.placement,
                "coarse_sample_size": config.coarse_sample_size,
                "coarse_iterations": config.coarse_iterations,
                "balance_factor": config.balance_factor,
                "seed": config.seed,
                "eval_batch": config.eval_batch,
                "prune_slack": config.prune_slack,
            },
            "shards": shard_names,
            "files": files,
        }, "storage.write")
        self._collect_garbage(self._read_manifest())
        self._reset_rows()
        OBS.count("storage.columnar.writes")
        return self.path

    # -- load -------------------------------------------------------------

    def load_index(self, mmap: bool = False) -> Any:
        """Materialize the index: base snapshot + deterministic replay.

        With ``mmap=True`` trajectory/centroid/sketch columns stay on
        disk as read-only memory-mapped views — the tree holds zero-copy
        slices and pages fault in per query.  The replayed tree answers
        queries bit-identically to the live index that wrote the store.
        """
        with OBS.span("storage.columnar.load", mmap=mmap):
            manifest = self._read_manifest()
            self._check_sizes(manifest)
            if manifest["kind"] == _KIND_SHARDED:
                return self._load_sharded(manifest, mmap)
            segments = manifest["segments"]
            if not segments or segments[0]["kind"] != "base":
                raise IndexCorruptionError(
                    f"store {self.path} has no base segment",
                    details={"path": self.path,
                             "segments": [s["name"] for s in segments]},
                )
            index, row_ogs = self._materialize_base(segments[0], mmap)
            dead: set[int] = set()
            for segment in segments[1:]:
                self._replay_delta(index, segment, row_ogs, dead, mmap)
            tombstoned = self._load_tombstones(manifest)
            if tombstoned != dead or len(dead) != manifest["rows_dead"]:
                raise IndexCorruptionError(
                    f"tombstone bitmap of {self.path} disagrees with the "
                    f"delta log ({len(tombstoned)} bitmap vs {len(dead)} "
                    "replayed dead rows)",
                    details={"path": self.path, "bitmap": len(tombstoned),
                             "replayed": len(dead),
                             "manifest": manifest["rows_dead"]},
                )
            if len(row_ogs) != manifest["rows_total"]:
                raise IndexCorruptionError(
                    f"row count mismatch in {self.path}: replay produced "
                    f"{len(row_ogs)} rows, manifest says "
                    f"{manifest['rows_total']}",
                    details={"path": self.path, "replayed": len(row_ogs),
                             "manifest": manifest["rows_total"]},
                )
            self._row_of = {og.og_id: row for row, og in enumerate(row_ogs)}
            self._rows = len(row_ogs)
            self._dead = dead
            self._bound = True
            OBS.count("storage.columnar.loads")
            return index

    def row_ordinals(self) -> dict[int, int]:
        """Live ``og_id -> global row ordinal`` map of the bound index.

        og_ids are minted per process and never stable across loads;
        the row ordinal *is* stable — it names the record's position in
        the on-disk column order, so it is the identity that crosses
        process (and network) boundaries.  Only valid after
        ``load_index``/``write_index`` bound this store to an index.
        """
        if not self._bound:
            raise IndexStateError(
                f"store {self.path} is not bound to an index "
                "(call load_index() or write_index() first)")
        return dict(self._row_of)

    def _materialize_base(self, segment: dict[str, Any], mmap: bool):
        arrays = self._load_segment_arrays(segment, mmap)
        meta = self._read_segment_meta(segment)
        try:
            index = index_from_arrays(
                arrays, meta,
                source=os.path.join(self.path, segment["name"]))
        except (KeyError, ValueError, IndexError, TypeError) as exc:
            raise IndexCorruptionError(
                f"cannot materialize base segment of {self.path}: {exc}",
                details={"path": self.path, "segment": segment["name"],
                         "cause": type(exc).__name__},
            ) from exc
        return index, [og for og, _ in leaf_ogs(index)]

    def _replay_delta(self, index: Any, segment: dict[str, Any],
                      row_ogs: list, dead: set[int], mmap: bool) -> None:
        from repro.graph.object_graph import ObjectGraph

        arrays = self._load_segment_arrays(segment, mmap)
        meta = self._read_segment_meta(segment)
        try:
            ops = meta["ops"]
            refs = meta["refs"]
            values = _unpack_ragged(arrays["og_values"],
                                    arrays["og_offsets"])
            frames = _unpack_ragged(arrays["og_frames"],
                                    arrays["og_offsets"])
            labels = arrays["og_labels"]
            backgrounds = (_unpack_backgrounds(arrays)
                           if "bg_frames" in arrays else [])
            inserted = 0
            for op in ops:
                code, operand = op[0], int(op[1])
                if code == "i":
                    og = ObjectGraph(
                        values=values[inserted],
                        frames=frames[inserted],
                        label=(None if labels[inserted] < 0
                               else int(labels[inserted])),
                    )
                    background = (backgrounds[operand]
                                  if operand >= 0 else None)
                    index.insert(og, background, refs[inserted])
                    row_ogs.append(og)
                    inserted += 1
                elif code == "d":
                    index.delete(row_ogs[operand].og_id)
                    dead.add(operand)
                else:
                    raise ValueError(f"unknown op code {code!r}")
        except (KeyError, ValueError, IndexError, TypeError) as exc:
            raise IndexCorruptionError(
                f"cannot replay delta segment {segment['name']} of "
                f"{self.path}: {exc}",
                details={"path": self.path, "segment": segment["name"],
                         "cause": type(exc).__name__},
            ) from exc

    def _load_sharded(self, manifest: dict[str, Any], mmap: bool) -> Any:
        from repro.serving.sharding import ShardedIndex, ShardedIndexConfig

        shards = []
        for name in manifest["shards"]:
            shard_store = ColumnarStore(os.path.join(self.path, name),
                                        normalize=False)
            shards.append(shard_store.load_index(mmap=mmap))
        if not shards:
            raise IndexCorruptionError(
                f"sharded store {self.path} lists no shards",
                details={"path": self.path},
            )
        try:
            pivot_values = np.load(
                os.path.join(self.path, "pivot_values.npy"),
                mmap_mode="r" if mmap else None, allow_pickle=False)
            pivot_offsets = np.load(
                os.path.join(self.path, "pivot_offsets.npy"),
                allow_pickle=False)
            config = ShardedIndexConfig(index=shards[0].config,
                                        **manifest["serving_config"])
        except (OSError, ValueError, EOFError, TypeError, KeyError) as exc:
            raise IndexCorruptionError(
                f"cannot read sharded store {self.path}: {exc}",
                details={"path": self.path, "cause": type(exc).__name__},
            ) from exc
        index = ShardedIndex(config)
        index.shards = shards
        index.metric_distance = shards[0].metric_distance
        index.cluster_distance = shards[0].cluster_distance
        if manifest["has_pivots"]:
            index.pivots = [
                np.asarray(p, dtype=np.float64)
                for p in _unpack_ragged(pivot_values, pivot_offsets)
            ]
        else:
            index.pivots = None
        index.refresh_bounds()
        self._reset_rows()
        return index

    # -- row-addressed reads + out-of-core sketch --------------------------

    def row_reader(self, mmap: bool = True) -> "ColumnarRowReader":
        """Row-addressed reads over the committed store (no tree load).

        Resolves global row ordinals to zero-copy offsets-table slices
        of the (optionally mmap'd) segment columns — see
        :class:`ColumnarRowReader`.  Sharded stores have no global row
        space; open the shard stores individually.
        """
        manifest = self._read_manifest()
        self._check_sizes(manifest)
        if manifest["kind"] != _KIND_INDEX:
            raise StorageError(
                f"sharded store {self.path} has no global row space; "
                "open the shard stores individually")
        return ColumnarRowReader(self, manifest, mmap)

    def load_sketch(self, distance: Any = None, mmap: bool = True) -> Any:
        """Attach the persisted sketch tier straight from store columns.

        The out-of-core approximate search entry point: returns a
        store-attached ``SketchIndex`` whose base arrays are zero-copy
        (optionally mmap) views of the base segment's ``sketch_*``
        columns, with ``(og, clip_ref)`` records materialized lazily
        through the row-addressed read path — no tree, no O(corpus)
        resident memory.  Row ordinals double as og_ids, which keeps
        rerank tie-breaking bit-identical to the materialized index
        (fresh og_ids there are minted in the same row order).

        Delta segments replay through ``sketch.add``/``sketch.remove``
        (recomputing pivot distances with ``distance`` — default: the
        stored config's ``MetricEGED``) into the sketch's in-RAM tail,
        and the result is cross-checked against the committed tombstone
        bitmap.  Returns ``None`` when the store holds no persisted
        sketch (callers fall back to materializing the index); raises
        ``StorageError`` for sharded stores.
        """
        from repro.distance.eged import MetricEGED
        from repro.search.sketch import LazyRows, sketch_from_meta

        with OBS.span("storage.columnar.load_sketch", mmap=mmap):
            manifest = self._read_manifest()
            self._check_sizes(manifest)
            if manifest["kind"] != _KIND_INDEX:
                raise StorageError(
                    f"sharded store {self.path} has no single sketch "
                    "tier; open the shard stores individually")
            segments = manifest["segments"]
            if not segments or segments[0].get("kind") != "base":
                raise IndexCorruptionError(
                    f"store {self.path} has no base segment",
                    details={"path": self.path,
                             "segments": [s["name"] for s in segments]},
                )
            base = segments[0]
            meta = self._read_segment_meta(base)
            sketch_meta = meta.get("sketch_meta")
            if sketch_meta is None:
                return None
            base_rows = int(base["rows"])
            try:
                sketch = sketch_from_meta(sketch_meta)
            except (KeyError, ValueError, TypeError,
                    json.JSONDecodeError) as exc:
                raise IndexCorruptionError(
                    f"corrupt sketch meta in {self.path}: {exc}",
                    details={"path": self.path,
                             "cause": type(exc).__name__},
                ) from exc
            pivot_cols = self._load_columns(
                base, ("sketch_pivot_values", "sketch_pivot_offsets"),
                mmap=False)
            sketch.pivots = [
                np.asarray(p, dtype=np.float64)
                for p in _unpack_ragged(pivot_cols["sketch_pivot_values"],
                                        pivot_cols["sketch_pivot_offsets"])
            ]
            cols = self._load_columns(
                base, ("sketch_pivot_dists", "sketch_sig"), mmap)
            pd = cols["sketch_pivot_dists"]
            sig = cols["sketch_sig"]
            if (pd.shape != (base_rows, len(sketch.pivots))
                    or sig.shape != (base_rows,
                                     sketch.config.sig_length)):
                raise IndexCorruptionError(
                    f"sketch columns of {self.path} do not match the "
                    f"base segment ({pd.shape}/{sig.shape} vs "
                    f"{base_rows} rows)",
                    details={"path": self.path, "rows": base_rows,
                             "pivot_dists": list(pd.shape),
                             "sig": list(sig.shape)},
                )
            reader = ColumnarRowReader(self, manifest, mmap)
            seg_dir = os.path.join(self.path, base["name"])
            sketch.attach_rows(
                np.arange(base_rows, dtype=np.int64), pd, sig,
                LazyRows(reader, base_rows),
                owned=False,
                scan_paths={
                    "pivot_dists": os.path.join(seg_dir,
                                                "sketch_pivot_dists.npy"),
                    "sig": os.path.join(seg_dir, "sketch_sig.npy"),
                },
            )
            if distance is None:
                distance = MetricEGED(meta["config"]["metric_gap"])
            next_row = base_rows
            for segment in segments[1:]:
                seg_meta = self._read_segment_meta(segment)
                ins_rows: list[int] = []
                dels: list[int] = []
                try:
                    for op in seg_meta["ops"]:
                        code, operand = op[0], int(op[1])
                        if code == "i":
                            ins_rows.append(next_row)
                            next_row += 1
                        elif code == "d":
                            dels.append(operand)
                        else:
                            raise ValueError(f"unknown op code {code!r}")
                except (KeyError, ValueError, TypeError,
                        IndexError) as exc:
                    raise IndexCorruptionError(
                        f"cannot replay delta segment {segment['name']} "
                        f"of {self.path}: {exc}",
                        details={"path": self.path,
                                 "segment": segment["name"],
                                 "cause": type(exc).__name__},
                    ) from exc
                if ins_rows:
                    # Same-batch inserts land before the batch's deletes;
                    # a delete can only name an already-appended row, so
                    # batching per segment preserves the op-order state.
                    pairs = [reader.record(row) for row in ins_rows]
                    sketch.add(distance, [og for og, _ in pairs],
                               [ref for _, ref in pairs])
                for row in dels:
                    if not sketch.remove(row):
                        raise IndexCorruptionError(
                            f"delta segment {segment['name']} of "
                            f"{self.path} deletes unknown row {row}",
                            details={"path": self.path,
                                     "segment": segment["name"],
                                     "row": row},
                        )
            live = manifest["rows_total"] - manifest["rows_dead"]
            if next_row != manifest["rows_total"] or len(sketch) != live:
                raise IndexCorruptionError(
                    f"sketch replay of {self.path} disagrees with the "
                    f"manifest ({len(sketch)} live rows vs {live})",
                    details={"path": self.path, "live": len(sketch),
                             "manifest": live,
                             "rows": next_row,
                             "rows_total": manifest["rows_total"]},
                )
            sketch.replay_distance = distance
            OBS.count("storage.columnar.sketch_loads")
            return sketch

    # -- incremental append -----------------------------------------------

    def append(self, writes: Sequence[Any]) -> str | None:
        """Persist one ordered write batch as a delta segment — O(delta).

        ``writes`` is a sequence of objects with the ``_BufferedWrite``
        shape (``op`` of ``"insert"``/``"delete"``, plus ``og``,
        ``background``, ``clip_ref`` or ``og_id``) — exactly what one
        ``LiveIndex.compact()`` applied.  Deletes of og_ids the store
        does not know (never persisted, or already dead) are no-ops,
        matching ``index.delete()`` returning ``False``.  Returns the
        new segment name, or ``None`` when the batch was all no-ops.
        """
        with self._mutate_lock:
            if not self.exists():
                raise StorageError(
                    f"cannot append to {self.path}: store does not exist "
                    "(write_index() first)")
            manifest = self._read_manifest()
            if manifest["kind"] != _KIND_INDEX:
                raise StorageError(
                    f"cannot append to {self.path}: sharded columnar "
                    "stores are write/load-only — append to the shard "
                    "stores or rewrite with write_index()")
            if not self._bound:
                raise StorageError(
                    f"cannot append to {self.path}: store rows are not "
                    "bound to this process (call load_index() or "
                    "write_index() first)")
            with OBS.span("storage.columnar.append", writes=len(writes)):
                return self._append_locked(manifest, writes)

    def _append_locked(self, manifest: dict[str, Any],
                       writes: Sequence[Any]) -> str | None:
        ops: list[list] = []
        insert_ogs: list[Any] = []
        insert_refs: list[Any] = []
        delta_backgrounds: list[Any] = []
        bg_ordinal: dict[int, int] = {}
        overlay: dict[int, int] = {}
        rows = self._rows
        new_dead: list[int] = []
        for write in writes:
            if write.op == "insert":
                background = write.background
                if background is None:
                    ordinal = -1
                else:
                    ordinal = bg_ordinal.get(id(background), -2)
                    if ordinal == -2:
                        ordinal = len(delta_backgrounds)
                        bg_ordinal[id(background)] = ordinal
                        delta_backgrounds.append(background)
                ops.append(["i", ordinal])
                insert_ogs.append(write.og)
                insert_refs.append(write.clip_ref)
                overlay[write.og.og_id] = rows
                rows += 1
            elif write.op == "delete":
                row = overlay.get(write.og_id,
                                  self._row_of.get(write.og_id))
                if row is None or row in self._dead or row in new_dead:
                    continue
                ops.append(["d", int(row)])
                new_dead.append(int(row))
            else:
                raise InvalidParameterError(
                    f"unknown write op {write.op!r}")
        if not ops:
            return None
        og_flat, og_offsets = _pack_ragged([og.values for og in insert_ogs])
        frames_flat = (
            np.concatenate([np.asarray(og.frames, dtype=np.int64)
                            for og in insert_ogs])
            if insert_ogs else np.zeros(0, dtype=np.int64)
        )
        labels = np.array(
            [-1 if og.label is None else og.label for og in insert_ogs],
            dtype=np.int64,
        )
        arrays = dict(og_values=og_flat, og_offsets=og_offsets,
                      og_frames=frames_flat, og_labels=labels)
        if delta_backgrounds:
            arrays.update(_pack_backgrounds([
                SimpleNamespace(background=bg) for bg in delta_backgrounds
            ]))
        ordinal = manifest["next_segment"]
        name = f"seg-{ordinal:06d}"
        segment = self._write_segment(name, arrays, {
            "kind": "delta", "ops": ops, "refs": insert_refs,
        })
        segment.update(kind="delta", rows=len(insert_ogs))
        dead = set(self._dead)
        dead.update(new_dead)
        tombstones = self._write_tombstones(ordinal, rows, dead)
        manifest = dict(manifest)
        manifest["segments"] = manifest["segments"] + [segment]
        manifest["next_segment"] = ordinal + 1
        manifest["rows_total"] = rows
        manifest["rows_dead"] = len(dead)
        manifest["tombstones"] = tombstones
        self._commit_manifest(manifest, "storage.append")
        self._collect_garbage(manifest)
        if maybe_truncate(
                "storage.append",
                os.path.join(self.path, name, "og_values.npy")):
            logger.warning("injected truncation in segment %s", name)
        self._row_of.update(overlay)
        self._rows = rows
        self._dead = dead
        OBS.count("storage.columnar.appends")
        OBS.gauge("storage.columnar.segments", len(manifest["segments"]))
        return name

    def checkpoint(self, index: Any, writes: Sequence[Any] | None = None
                   ) -> str | None:
        """Durability hook with the cheapest valid persistence step.

        With ``writes`` (the batch applied since the last checkpoint)
        and a bound existing store, appends one O(delta) segment;
        otherwise falls back to a full ``write_index`` (first
        checkpoint, or a store this process has not loaded).  The NPZ
        store exposes the same method, always doing the full rewrite —
        callers like ``IngestService`` stay format-agnostic.
        """
        with self._mutate_lock:
            if writes is not None and self._bound and self.exists() \
                    and getattr(index, "shards", None) is None:
                return self.append(writes)
            self.write_index(index)
            return None

    # -- merge ------------------------------------------------------------

    def needs_merge(self) -> bool:
        """Whether segment count / dead-row fraction crossed the policy."""
        if not self.exists():
            return False
        manifest = self._read_manifest()
        if manifest["kind"] != _KIND_INDEX:
            return False
        if len(manifest["segments"]) > self.merge_max_segments:
            return True
        total = max(manifest["rows_total"], 1)
        return manifest["rows_dead"] / total > self.merge_dead_fraction

    def merge(self, index: Any = None) -> bool:
        """Fold every segment into a fresh base (O(corpus), amortized).

        ``index`` — when the caller holds the live index the store state
        replays to (e.g. the snapshot just published by
        ``LiveIndex.compact``) — is written directly, keeping the
        process-local og_id row bindings.  Without it the store
        materializes itself from disk first (offline compaction, e.g.
        ``repro convert --merge``).
        """
        with self._mutate_lock:
            if not self.exists():
                return False
            with OBS.span("storage.columnar.merge"):
                if index is not None:
                    self.write_index(index)
                    OBS.count("storage.columnar.merges")
                    return True
                # Offline fold: materialize committed state, rewrite it
                # as the new base, then translate any live og_id
                # bindings through (old ordinal -> fresh og -> new
                # ordinal) so an attached writer can keep appending.
                live = dict(self._row_of) if self._bound else None
                materialized = self.load_index(mmap=False)
                old_of_fresh = dict(self._row_of)
                self.write_index(materialized)
                if live is not None:
                    new_of_old = {
                        old: self._row_of[fresh]
                        for fresh, old in old_of_fresh.items()
                        if fresh in self._row_of
                    }
                    self._row_of = {
                        og_id: new_of_old[old]
                        for og_id, old in live.items()
                        if old in new_of_old
                    }
                OBS.count("storage.columnar.merges")
                return True

    def maybe_merge(self, index: Any = None,
                    background: bool = False) -> bool:
        """Merge if the policy says so; optionally in a daemon thread.

        Returns whether a merge ran (foreground) or was scheduled
        (background).  Background merges serialize on the store's write
        lock, so concurrent appends simply wait their turn.
        """
        if not self.needs_merge():
            return False
        if not background:
            return self.merge(index)
        with self._mutate_lock:
            if self._merge_thread is not None \
                    and self._merge_thread.is_alive():
                return False
            worker = threading.Thread(
                target=self._background_merge, args=(index,),
                name="columnar-merge", daemon=True)
            self._merge_thread = worker
            worker.start()
        return True

    def _background_merge(self, index: Any) -> None:
        try:
            if self.needs_merge():
                self.merge(index)
        except Exception:  # pragma: no cover - logged, never propagates
            logger.exception("background merge of %s failed", self.path)

    def join_merges(self, timeout: float | None = None) -> None:
        """Wait for an in-flight background merge (tests, clean shutdown)."""
        worker = self._merge_thread
        if worker is not None:
            worker.join(timeout)

    # -- integrity / introspection ----------------------------------------

    def verify(self) -> dict[str, Any]:
        """Full integrity pass: re-hash every file against the manifest.

        This is the O(corpus) deep check that the O(1) open deliberately
        skips; ``repro convert`` runs it after every migration.  Returns
        ``{"files": n, "bytes": n}`` or raises ``IndexCorruptionError``.
        """
        manifest = self._read_manifest()
        self._check_sizes(manifest)
        files = 0
        total = 0
        for rel, entry in self._iter_file_entries(manifest):
            target = os.path.join(self.path, rel)
            actual = _sha256_file(target)
            if actual != entry["sha256"]:
                raise IndexCorruptionError(
                    f"checksum mismatch in {target}: payload was altered "
                    "on disk",
                    details={"path": target, "expected": entry["sha256"],
                             "actual": actual},
                )
            files += 1
            total += entry["bytes"]
        for name in manifest.get("shards", []):
            shard = ColumnarStore(os.path.join(self.path, name),
                                  normalize=False)
            report = shard.verify()
            files += report["files"]
            total += report["bytes"]
        return {"files": files, "bytes": total}

    def describe(self) -> dict[str, Any]:
        """Small stats dict for CLI/status output."""
        manifest = self._read_manifest()
        info: dict[str, Any] = {
            "path": self.path,
            "format": self.format,
            "kind": manifest["kind"],
        }
        if manifest["kind"] == _KIND_SHARDED:
            info["num_shards"] = manifest["num_shards"]
            return info
        info.update(
            segments=len(manifest["segments"]),
            rows_total=manifest["rows_total"],
            rows_dead=manifest["rows_dead"],
            bytes=sum(entry["bytes"] for _, entry
                      in self._iter_file_entries(manifest)),
        )
        return info

    def __repr__(self) -> str:
        return f"ColumnarStore({self.path!r})"


class ColumnarRowReader:
    """Row-addressed reads over a committed index store.

    Global row ordinals — base rows in leaf-iteration order, then delta
    inserts in op order, the same numbering ``row_ordinals()`` exposes —
    resolve to ``(segment, local row)`` via a prefix-sum binary search.
    Series and frames come out as zero-copy offsets-table slices of the
    (optionally mmap'd) ``og_*`` columns: touching one row faults in
    that row's pages, never a whole segment.  Segment columns and metas
    load lazily on first touch, so a reader over a million-row store
    costs a few manifest stats until a row is actually read.

    Records are ``ObjectGraph``s minted with ``og_id = row ordinal`` —
    the one identity that is stable across processes — which is what
    keeps out-of-core rerank tie-breaking bit-identical to the
    materialized index (whose fresh og_ids are minted in the same row
    order).
    """

    def __init__(self, store: ColumnarStore, manifest: dict[str, Any],
                 mmap: bool = True):
        if manifest["kind"] != _KIND_INDEX:
            raise StorageError(
                f"sharded store {store.path} has no global row space")
        segments = manifest["segments"]
        if not segments or segments[0].get("kind") != "base":
            raise IndexCorruptionError(
                f"store {store.path} has no base segment",
                details={"path": store.path,
                         "segments": [s["name"] for s in segments]},
            )
        self._store = store
        self._mmap = bool(mmap)
        self._segments = list(segments)
        self._columns: list[dict[str, np.ndarray] | None] = (
            [None] * len(segments))
        self._refs: list[list | None] = [None] * len(segments)
        starts = np.zeros(len(segments) + 1, dtype=np.int64)
        for i, segment in enumerate(segments):
            starts[i + 1] = starts[i] + int(segment["rows"])
        self._starts = starts
        self._rows_total = int(manifest["rows_total"])
        if int(starts[-1]) != self._rows_total:
            raise IndexCorruptionError(
                f"segment row counts of {store.path} sum to "
                f"{int(starts[-1])}, manifest says {self._rows_total}",
                details={"path": store.path, "sum": int(starts[-1]),
                         "manifest": self._rows_total},
            )
        self._dead = store._load_tombstones(manifest)

    def __len__(self) -> int:
        return self._rows_total

    def alive_mask(self) -> np.ndarray:
        """Boolean live-row mask over all global row ordinals."""
        alive = np.ones(self._rows_total, dtype=bool)
        if self._dead:
            alive[np.fromiter(self._dead, dtype=np.int64)] = False
        return alive

    def is_alive(self, row: int) -> bool:
        return int(row) not in self._dead

    def _locate(self, row: int) -> tuple[int, int]:
        if not 0 <= row < self._rows_total:
            raise InvalidParameterError(
                f"row {row} out of range [0, {self._rows_total})")
        part = int(np.searchsorted(self._starts, row, side="right")) - 1
        return part, row - int(self._starts[part])

    def _part_columns(self, part: int) -> dict[str, np.ndarray]:
        columns = self._columns[part]
        if columns is None:
            columns = self._store._load_columns(
                self._segments[part],
                ("og_values", "og_offsets", "og_frames", "og_labels"),
                self._mmap,
            )
            self._columns[part] = columns
        return columns

    def _part_refs(self, part: int) -> list:
        refs = self._refs[part]
        if refs is None:
            meta = self._store._read_segment_meta(self._segments[part])
            refs = meta.get("refs") or []
            self._refs[part] = refs
        return refs

    def series(self, row: int) -> np.ndarray:
        """Zero-copy ``(n, d)`` float64 trajectory slice of one row."""
        part, local = self._locate(int(row))
        columns = self._part_columns(part)
        offsets = columns["og_offsets"]
        lo, hi = int(offsets[local]), int(offsets[local + 1])
        return columns["og_values"][lo:hi]

    def record(self, row: int) -> tuple[Any, Any]:
        """``(og, clip_ref)`` of one row, ``og_id`` = the row ordinal."""
        from repro.graph.object_graph import ObjectGraph

        row = int(row)
        part, local = self._locate(row)
        columns = self._part_columns(part)
        offsets = columns["og_offsets"]
        lo, hi = int(offsets[local]), int(offsets[local + 1])
        frames = None
        frames_flat = columns["og_frames"]
        if frames_flat.shape[0] == int(offsets[-1]):
            frames = frames_flat[lo:hi]
        label = int(columns["og_labels"][local])
        refs = self._part_refs(part)
        og = ObjectGraph(
            values=columns["og_values"][lo:hi],
            frames=frames,
            label=None if label < 0 else label,
            og_id=row,
        )
        return og, (refs[local] if local < len(refs) else None)


__all__ = [
    "COLUMNAR_FORMAT",
    "COLUMNAR_VERSION",
    "ColumnarRowReader",
    "ColumnarStore",
    "columnar_path",
    "is_columnar_store",
]
