"""Persistence: OG/index serialization and the ``VideoDatabase`` facade."""

from repro.storage.serialize import (
    save_object_graphs,
    load_object_graphs,
    save_index,
    load_index,
    npz_path,
)
from repro.storage.database import VideoDatabase

__all__ = [
    "save_object_graphs",
    "load_object_graphs",
    "save_index",
    "load_index",
    "npz_path",
    "VideoDatabase",
]
