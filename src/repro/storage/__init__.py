"""Persistence: snapshot stores and the ``VideoDatabase`` facade.

The supported entry point is :func:`open_store` — it negotiates the
on-disk format (columnar ``.strg`` directory, checksummed v2 NPZ, or
sharded NPZ) and returns one uniform reader/writer protocol.  See
``docs/STORAGE.md`` for the formats and the migration guide.

The historical per-format functions (``save_index`` / ``load_index`` /
``save_sharded_index`` / ``load_sharded_index``) remain importable from
this package as deprecated shims; internal code uses
``repro.storage.serialize`` directly.
"""

import warnings

from repro.storage.columnar import ColumnarStore, is_columnar_store
from repro.storage.database import VideoDatabase
from repro.storage.serialize import (
    load_object_graphs,
    npz_path,
    save_object_graphs,
)
from repro.storage.store import (
    FORMATS,
    NpzStore,
    convert,
    detect_format,
    open_store,
    snapshot_exists,
    store_path,
)

_DEPRECATED = {
    "save_index": "open_store(path, format='npz').write_index(index)",
    "load_index": "open_store(path).load_index()",
    "save_sharded_index": "open_store(path, format='npz').write_index(index)",
    "load_sharded_index": "open_store(path).load_index()",
}


def __getattr__(name: str):
    # PR 3 pattern (cf. repro.distance.cache): keep the old surface
    # importable, with a DeprecationWarning nudging at the facade.
    if name in _DEPRECATED:
        warnings.warn(
            f"repro.storage.{name} is deprecated; use "
            f"repro.storage.{_DEPRECATED[name]} — the facade negotiates "
            "columnar vs NPZ vs sharded-NPZ snapshots uniformly",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.storage import serialize

        return getattr(serialize, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FORMATS",
    "ColumnarStore",
    "NpzStore",
    "VideoDatabase",
    "convert",
    "detect_format",
    "is_columnar_store",
    "load_object_graphs",
    "npz_path",
    "open_store",
    "save_object_graphs",
    "snapshot_exists",
    "store_path",
]
