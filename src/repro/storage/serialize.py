"""Serialization of Object Graphs and whole STRG-Index trees.

OG sets are stored in a single NPZ (ragged sequences are flattened with an
offset table).  Indexes are stored as NPZ too: the tree shape (root ->
cluster -> leaf membership) is encoded in integer arrays alongside the
centroid/OG payloads and the per-root Background Graphs (node attributes
plus spatial edges), so a loaded index answers queries — including
background-routed ones — identically.

Persistence is crash-safe (see ``docs/RESILIENCE.md``):

- every write goes to a temp file in the destination directory, is
  fsync'd, then atomically renamed over the target — an interrupted save
  leaves the previous complete snapshot untouched;
- every archive embeds a format-version header and a SHA-256 digest of
  its payload arrays, verified on load.  Truncation, bit flips and
  unknown versions raise :class:`~repro.errors.IndexCorruptionError`
  instead of returning a silently wrong index.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import zipfile
import zlib
from typing import Any, Sequence

import numpy as np

from repro.core.index import STRGIndex, STRGIndexConfig
from repro.core.nodes import LeafRecord, RootRecord
from repro.errors import IndexCorruptionError, StorageError
from repro.graph.attributes import NodeAttributes
from repro.graph.decomposition import BackgroundGraph
from repro.graph.object_graph import ObjectGraph, claim_og_ids
from repro.graph.rag import RegionAdjacencyGraph
from repro.resilience.faults import maybe_fail, maybe_truncate

logger = logging.getLogger(__name__)

#: Current on-disk format.  Version 1 is the pre-checksum format (no
#: header keys); it is still readable but gets no integrity verification.
FORMAT_VERSION = 2

_HEADER_KEYS = ("__format_version__", "__checksum__")


def npz_path(path: str | os.PathLike) -> str:
    """Normalize ``path`` the way :func:`numpy.savez_compressed` does.

    NumPy appends ``.npz`` when the suffix is missing; doing the same
    normalization once — and using it for writing, reading and error
    messages — keeps ``save(path)`` / ``load(path)`` round-trips working
    for suffix-less paths.
    """
    p = os.fspath(path)
    return p if p.endswith(".npz") else p + ".npz"


def _payload_digest(arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 over names, dtypes, shapes and bytes of payload arrays."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        if name in _HEADER_KEYS:
            continue
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def _atomic_savez(path: str | os.PathLike,
                  arrays: dict[str, np.ndarray]) -> str:
    """Write ``arrays`` (plus integrity header) atomically; return path.

    The ``storage.write`` injection point fires after the temp file is
    complete but *before* the rename — exactly the window in which a
    crash must not corrupt the destination.
    """
    target = npz_path(path)
    arrays = dict(arrays)
    arrays["__format_version__"] = np.int64(FORMAT_VERSION)
    arrays["__checksum__"] = np.array(_payload_digest(arrays))
    directory = os.path.dirname(target) or "."
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(target) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        maybe_fail("storage.write", path=target)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise
    if maybe_truncate("storage.write", target):
        logger.warning("injected truncation of %s", target)
    return target


def _verified_load(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Load an NPZ written by :func:`_atomic_savez` and verify integrity.

    Raises :class:`StorageError` for a missing file and
    :class:`IndexCorruptionError` for anything unreadable or failing the
    checksum / version checks.
    """
    target = npz_path(path)
    maybe_fail("storage.read", path=target)
    try:
        with np.load(target, allow_pickle=False) as data:
            arrays = {name: np.array(data[name]) for name in data.files}
    except FileNotFoundError as exc:
        raise StorageError(f"cannot read {target}: {exc}") from exc
    except (zipfile.BadZipFile, zlib.error, OSError, EOFError,
            KeyError, ValueError) as exc:
        raise IndexCorruptionError(
            f"corrupt archive {target}: {exc}",
            details={"path": target, "cause": type(exc).__name__},
        ) from exc
    if "__format_version__" not in arrays:
        # Legacy (version 1) archive: readable, but carries no checksum.
        logger.info("loading legacy (v1) archive %s without verification",
                    target)
        return arrays
    version = int(arrays["__format_version__"])
    if not 1 <= version <= FORMAT_VERSION:
        raise IndexCorruptionError(
            f"unsupported format version {version} in {target} "
            f"(supported: 1..{FORMAT_VERSION})",
            details={"path": target, "version": version,
                     "supported": FORMAT_VERSION},
        )
    expected = str(arrays["__checksum__"])
    actual = _payload_digest(arrays)
    if actual != expected:
        raise IndexCorruptionError(
            f"checksum mismatch in {target}: payload was altered on disk",
            details={"path": target, "expected": expected, "actual": actual},
        )
    return arrays


def _pack_ragged(arrays: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Flatten a list of (n_i, d) arrays into (sum n_i, d) + offsets."""
    if arrays:
        flat = np.concatenate([np.asarray(a, dtype=np.float64) for a in arrays])
    else:
        flat = np.zeros((0, 1))
    offsets = np.cumsum([0] + [np.asarray(a).shape[0] for a in arrays])
    return flat, offsets.astype(np.int64)


def _unpack_ragged(flat: np.ndarray, offsets: np.ndarray) -> list[np.ndarray]:
    """Inverse of :func:`_pack_ragged`."""
    return [
        flat[offsets[i]:offsets[i + 1]] for i in range(len(offsets) - 1)
    ]


def save_object_graphs(path: str | os.PathLike,
                       ogs: Sequence[ObjectGraph]) -> None:
    """Persist a set of OGs (values, frames, labels, ids) as NPZ."""
    try:
        flat, offsets = _pack_ragged([og.values for og in ogs])
        frames_flat = (
            np.concatenate([og.frames for og in ogs])
            if ogs else np.zeros(0, dtype=np.int64)
        )
        labels = np.array(
            [-1 if og.label is None else og.label for og in ogs],
            dtype=np.int64,
        )
        ids = np.array([og.og_id for og in ogs], dtype=np.int64)
        _atomic_savez(path, dict(values=flat, offsets=offsets,
                                 frames=frames_flat, labels=labels, ids=ids))
    except OSError as exc:
        raise StorageError(
            f"cannot write OGs to {npz_path(path)}: {exc}"
        ) from exc


def load_object_graphs(path: str | os.PathLike) -> list[ObjectGraph]:
    """Load OGs written by :func:`save_object_graphs`."""
    data = _verified_load(path)
    try:
        values = _unpack_ragged(data["values"], data["offsets"])
        frames = _unpack_ragged(
            data["frames"].reshape(-1, 1), data["offsets"]
        )
        labels = data["labels"]
        ids = data["ids"]
    except (KeyError, ValueError, IndexError) as exc:
        raise IndexCorruptionError(
            f"cannot read OGs from {npz_path(path)}: {exc}",
            details={"path": npz_path(path), "cause": type(exc).__name__},
        ) from exc
    ogs = []
    for v, f, label, og_id in zip(values, frames, labels, ids):
        og = ObjectGraph(
            values=v,
            frames=f.ravel().astype(np.int64),
            label=None if label < 0 else int(label),
            og_id=int(og_id),
        )
        ogs.append(og)
    if ogs:
        # Restored ids must never collide with ids minted later in this
        # process (identity, delete and knn ties are keyed by og_id).
        claim_og_ids(max(og.og_id for og in ogs) + 1)
    return ogs


def _pack_backgrounds(roots: Sequence[RootRecord]) -> dict[str, np.ndarray]:
    """Flatten the per-root Background Graphs into NPZ-friendly arrays.

    Roots with ``background=None`` are encoded with a frame count of -1.
    Node ids are re-serialized positionally; edges reference positions.
    """
    node_rows: list[list[float]] = []   # size, r, g, b, cx, cy
    node_offsets = [0]
    edge_rows: list[list[int]] = []     # root ordinal, u position, v position
    frame_counts: list[int] = []
    for root in roots:
        bg = root.background
        if bg is None:
            frame_counts.append(-1)
            node_offsets.append(node_offsets[-1])
            continue
        frame_counts.append(bg.frame_count)
        ordering = {node: pos for pos, node in enumerate(bg.rag.nodes())}
        for node in ordering:
            attrs = bg.rag.node_attrs(node)
            node_rows.append([float(attrs.size), *attrs.color,
                              *attrs.centroid])
        for u, v in bg.rag.edges():
            edge_rows.append([len(frame_counts) - 1, ordering[u], ordering[v]])
        node_offsets.append(node_offsets[-1] + len(ordering))
    return {
        "bg_nodes": np.asarray(node_rows, dtype=np.float64).reshape(-1, 6),
        "bg_node_offsets": np.asarray(node_offsets, dtype=np.int64),
        "bg_edges": np.asarray(edge_rows, dtype=np.int64).reshape(-1, 3),
        "bg_frames": np.asarray(frame_counts, dtype=np.int64),
    }


def _unpack_backgrounds(data) -> list[BackgroundGraph | None]:
    """Inverse of :func:`_pack_backgrounds`."""
    nodes = data["bg_nodes"]
    offsets = data["bg_node_offsets"]
    edges = data["bg_edges"]
    frame_counts = data["bg_frames"]
    backgrounds: list[BackgroundGraph | None] = []
    for ordinal, frames in enumerate(frame_counts):
        if frames < 0:
            backgrounds.append(None)
            continue
        rag = RegionAdjacencyGraph(frame_index=-1)
        lo, hi = int(offsets[ordinal]), int(offsets[ordinal + 1])
        for pos in range(lo, hi):
            size, r, g, b, cx, cy = nodes[pos]
            rag.add_node(pos - lo, NodeAttributes(
                size=int(size), color=(r, g, b), centroid=(cx, cy)
            ))
        for root_ord, u, v in edges:
            if int(root_ord) == ordinal:
                rag.add_edge(int(u), int(v))
        backgrounds.append(BackgroundGraph(rag, int(frames)))
    return backgrounds


def _pack_sketch(index: STRGIndex,
                 ogs: Sequence[ObjectGraph]
                 ) -> tuple[dict[str, np.ndarray], str | None]:
    """Sketch-tier columns for a snapshot (empty when unbuilt).

    Returns the numeric ``sketch_*`` arrays plus the JSON meta string.
    Rows are stored in the same order as the archive's leaf records
    (``ogs``), because og_ids are not stable across a save/load round
    trip — position is.  A sketch that lost sync with the index (should
    not happen; defensive) is dropped and will be rebuilt on demand.
    """
    sketch = getattr(index, "_sketches", None)
    if sketch is None or not sketch.pivots or len(sketch) != len(ogs):
        if sketch is not None and len(sketch) != len(ogs):
            logger.warning(
                "sketch tier out of sync with index (%d rows vs %d OGs); "
                "not persisting it", len(sketch), len(ogs))
        return {}, None
    from repro.search.sketch import sketch_meta_json

    row_of = {int(og_id): pos for pos, og_id in enumerate(sketch.og_ids)}
    rows = [row_of.get(og.og_id) for og in ogs]
    if any(row is None for row in rows):
        logger.warning("sketch tier missing rows for indexed OGs; "
                       "not persisting it")
        return {}, None
    order = np.asarray(rows, dtype=np.int64)
    pivot_flat, pivot_offsets = _pack_ragged(sketch.pivots)
    return dict(
        sketch_pivot_values=pivot_flat,
        sketch_pivot_offsets=pivot_offsets,
        sketch_pivot_dists=sketch.pivot_dists[order],
        sketch_sig=sketch.sig[order],
    ), sketch_meta_json(sketch)


def _unpack_sketch(data, sketch_meta: str, index: STRGIndex,
                   loaded: list[tuple[ObjectGraph, object]],
                   path: str | os.PathLike):
    """Rebuild the sketch tier from a snapshot's ``sketch_*`` arrays.

    ``loaded`` is the ``(og, clip_ref)`` list in archive order — the
    order :func:`_pack_sketch` wrote its rows in.  Anything off about
    the payload logs a warning and returns ``None`` (the lazy
    rebuild-on-demand fallback), never a corrupt sketch.
    """
    from repro.search.sketch import _EagerRows, sketch_from_meta

    try:
        sketch = sketch_from_meta(sketch_meta)
        sketch.pivots = [
            np.asarray(p, dtype=np.float64)
            for p in _unpack_ragged(data["sketch_pivot_values"],
                                    data["sketch_pivot_offsets"])
        ]
        pivot_dists = np.asarray(data["sketch_pivot_dists"],
                                 dtype=np.float64)
        sig = np.asarray(data["sketch_sig"], dtype=np.int16)
        if (pivot_dists.shape != (len(loaded), len(sketch.pivots))
                or sig.shape != (len(loaded), sketch.config.sig_length)):
            raise ValueError(
                f"sketch arrays {pivot_dists.shape}/{sig.shape} do not "
                f"match {len(loaded)} leaf records"
            )
    except (KeyError, ValueError, TypeError,
            json.JSONDecodeError) as exc:
        logger.warning(
            "ignoring unreadable sketch payload in %s (%s: %s); the "
            "sketch tier will be rebuilt on first budgeted query",
            os.fspath(path), type(exc).__name__, exc)
        return None
    # The arrays may be zero-copy views over an mmap'd archive; the
    # tree's OG objects are already materialized, so rows stay eager
    # (owned: later inserts grow the arrays with RAM semantics).
    og_ids = np.array([og.og_id for og, _ in loaded], dtype=np.int64)
    sketch.attach_rows(og_ids, pivot_dists, sig, _EagerRows(list(loaded)),
                       owned=True)
    return sketch


def leaf_ogs(index: STRGIndex) -> list[tuple[ObjectGraph, Any]]:
    """``(og, clip_ref)`` pairs in the stable leaf-iteration order.

    This is *the* row order of every snapshot format: NPZ archives and
    columnar segments both number rows by it, and sketch arrays are
    persisted positionally against it.
    """
    return [
        (leaf_record.og, leaf_record.clip_ref)
        for root_record in index.root
        for cluster_record in root_record.cluster_node
        for leaf_record in cluster_record.leaf
    ]


def index_to_arrays(index: STRGIndex
                    ) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Flatten an STRG-Index into numeric columns + JSON-able meta.

    The columns are the flat structured arrays shared by every snapshot
    format (NPZ archives, columnar segments): trajectories plus an
    offsets table, per-row labels/keys/cluster ordinals, centroid and
    background tables, and — when built — the sketch tier.  ``meta``
    carries everything non-numeric: the index config, per-row clip
    refs, root count and the sketch meta JSON.
    """
    ogs: list[ObjectGraph] = []
    keys: list[float] = []
    leaf_of_og: list[int] = []   # cluster record ordinal per leaf record
    centroids: list[np.ndarray] = []
    cluster_root: list[int] = []  # root record ordinal per cluster record
    refs: list = []
    cluster_ordinal = 0
    for root_ordinal, root_record in enumerate(index.root):
        for cluster_record in root_record.cluster_node:
            centroids.append(cluster_record.centroid)
            cluster_root.append(root_ordinal)
            for leaf_record in cluster_record.leaf:
                ogs.append(leaf_record.og)
                keys.append(leaf_record.key)
                leaf_of_og.append(cluster_ordinal)
                refs.append(leaf_record.clip_ref)
            cluster_ordinal += 1
    og_flat, og_offsets = _pack_ragged([og.values for og in ogs])
    frames_flat = (
        np.concatenate([np.asarray(og.frames, dtype=np.int64)
                        for og in ogs])
        if ogs else np.zeros(0, dtype=np.int64)
    )
    cen_flat, cen_offsets = _pack_ragged(centroids)
    labels = np.array(
        [-1 if og.label is None else og.label for og in ogs],
        dtype=np.int64,
    )
    config = index.config
    sketch_arrays, sketch_meta = _pack_sketch(index, ogs)
    arrays = dict(
        og_values=og_flat, og_offsets=og_offsets, og_labels=labels,
        og_frames=frames_flat,
        keys=np.asarray(keys, dtype=np.float64),
        leaf_of_og=np.asarray(leaf_of_og, dtype=np.int64),
        centroid_values=cen_flat, centroid_offsets=cen_offsets,
        cluster_root=np.asarray(cluster_root, dtype=np.int64),
        **_pack_backgrounds(index.root),
        **sketch_arrays,
    )
    meta = {
        "num_roots": len(index.root),
        "config": {
            "leaf_capacity": config.leaf_capacity,
            "bg_similarity_threshold": config.bg_similarity_threshold,
            "n_clusters": config.n_clusters,
            "k_max": config.k_max,
            "em_iterations": config.em_iterations,
            "metric_gap": config.metric_gap,
            "seed": config.seed,
        },
        "refs": refs,
        "sketch_meta": sketch_meta,
    }
    return arrays, meta


def index_from_arrays(arrays, meta: dict[str, Any],
                      source: str = "<arrays>") -> STRGIndex:
    """Rebuild an STRG-Index from :func:`index_to_arrays` output.

    ``arrays`` may be any mapping of name to array — in-RAM copies or
    memory-mapped ``.npy`` views.  Values (and frames) are *sliced*,
    never copied, so an index built over memory-mapped columns holds
    zero-copy views into the store file: pages fault in only when a
    query actually evaluates a trajectory.

    Raises ``KeyError``/``ValueError``/``IndexError`` on malformed
    payloads — callers wrap these in the format-appropriate
    :class:`~repro.errors.IndexCorruptionError`.
    """
    og_values = _unpack_ragged(arrays["og_values"], arrays["og_offsets"])
    labels = arrays["og_labels"]
    keys = arrays["keys"]
    leaf_of_og = arrays["leaf_of_og"]
    centroids = _unpack_ragged(
        arrays["centroid_values"], arrays["centroid_offsets"]
    )
    cluster_root = arrays["cluster_root"]
    num_roots = int(meta["num_roots"])
    config_kwargs = dict(meta["config"])
    refs = meta["refs"]
    og_frames = None
    if "og_frames" in arrays:
        frames_flat = arrays["og_frames"]
        if frames_flat.shape[0] == int(arrays["og_offsets"][-1]):
            og_frames = _unpack_ragged(frames_flat, arrays["og_offsets"])
    if "bg_frames" in arrays:
        backgrounds = _unpack_backgrounds(arrays)
    else:
        backgrounds = [None] * num_roots

    index = STRGIndex(STRGIndexConfig(**config_kwargs))
    roots = [RootRecord(i, backgrounds[i]) for i in range(num_roots)]
    index.root = roots
    index._next_root_id = num_roots
    cluster_records = []
    for centroid, root_ordinal in zip(centroids, cluster_root):
        record = roots[int(root_ordinal)].cluster_node.add(centroid)
        cluster_records.append(record)
    loaded: list[tuple[ObjectGraph, object]] = []
    for i, (values, label) in enumerate(zip(og_values, labels)):
        og = ObjectGraph(
            values=values, label=None if label < 0 else int(label),
            frames=(og_frames[i] if og_frames is not None else None),
        )
        record = cluster_records[int(leaf_of_og[i])]
        ref = refs[i] if i < len(refs) else None
        record.leaf.insert(LeafRecord(float(keys[i]), og, ref))
        loaded.append((og, ref))
    sketch_meta = meta.get("sketch_meta")
    if sketch_meta is not None:
        index._sketches = _unpack_sketch(arrays, sketch_meta, index,
                                         loaded, source)
    return index


def save_index(path: str | os.PathLike, index: STRGIndex) -> None:
    """Persist an STRG-Index tree (structure + payloads) as NPZ.

    A built sketch tier (``index.sketch_tier()``) rides along in
    ``sketch_*`` arrays; archives written before the approximate tier
    existed simply lack those keys and get a lazy rebuild on load.
    """
    try:
        arrays, meta = index_to_arrays(index)
        npz = dict(arrays)
        npz["num_roots"] = np.int64(meta["num_roots"])
        npz["config"] = np.array(json.dumps(meta["config"]))
        npz["refs"] = np.array(json.dumps(meta["refs"], default=str))
        if meta["sketch_meta"] is not None:
            npz["sketch_meta"] = np.array(meta["sketch_meta"])
        _atomic_savez(path, npz)
    except OSError as exc:
        raise StorageError(
            f"cannot write index to {npz_path(path)}: {exc}"
        ) from exc


def load_index(path: str | os.PathLike) -> STRGIndex:
    """Load an index written by :func:`save_index`."""
    data = _verified_load(path)
    try:
        meta = {
            "num_roots": int(data["num_roots"]),
            "config": json.loads(str(data["config"])),
            "refs": json.loads(str(data["refs"])),
            "sketch_meta": (str(data["sketch_meta"])
                            if "sketch_meta" in data else None),
        }
        return index_from_arrays(data, meta, source=npz_path(path))
    except (KeyError, ValueError, IndexError,
            json.JSONDecodeError) as exc:
        raise IndexCorruptionError(
            f"cannot read index from {npz_path(path)}: {exc}",
            details={"path": npz_path(path), "cause": type(exc).__name__},
        ) from exc


# -- sharded indexes ----------------------------------------------------------
#
# A sharded index persists as one *meta* archive at ``path`` (placement,
# pivots, serving config, and a ``kind`` marker distinguishing it from a
# monolithic snapshot) plus one ordinary index archive per shard at
# ``<base>.shard<i>.npz``.  Every file goes through the same atomic
# write + checksum machinery as the monolithic format.

_SHARDED_KIND = "sharded_index"


def _shard_path(path: str | os.PathLike, ordinal: int) -> str:
    base = npz_path(path)[:-len(".npz")]
    return f"{base}.shard{ordinal}.npz"


def is_sharded_snapshot(path: str | os.PathLike) -> bool:
    """True when ``path`` holds a sharded-index meta archive."""
    target = npz_path(path)
    if not os.path.exists(target):
        return False
    try:
        with np.load(target, allow_pickle=False) as data:
            return "kind" in data.files and str(data["kind"]) == _SHARDED_KIND
    except (zipfile.BadZipFile, zlib.error, OSError, EOFError,
            KeyError, ValueError):
        return False


def save_sharded_index(path: str | os.PathLike, index) -> str:
    """Persist a :class:`~repro.serving.sharding.ShardedIndex`.

    Writes ``<base>.shard<i>.npz`` per shard (via :func:`save_index`)
    and the meta archive last, so a crash mid-save never leaves a meta
    file pointing at missing shards.  Returns the meta archive path.
    """
    for ordinal, shard in enumerate(index.shards):
        save_index(_shard_path(path, ordinal), shard)
    config = index.config
    pivots = index.pivots if index.pivots is not None else []
    pivot_flat, pivot_offsets = _pack_ragged(list(pivots))
    config_json = json.dumps({
        "num_shards": config.num_shards,
        "placement": config.placement,
        "coarse_sample_size": config.coarse_sample_size,
        "coarse_iterations": config.coarse_iterations,
        "balance_factor": config.balance_factor,
        "seed": config.seed,
        "eval_batch": config.eval_batch,
        "prune_slack": config.prune_slack,
    })
    try:
        return _atomic_savez(path, dict(
            kind=np.array(_SHARDED_KIND),
            num_shards=np.int64(len(index.shards)),
            has_pivots=np.int64(index.pivots is not None),
            pivot_values=pivot_flat, pivot_offsets=pivot_offsets,
            serving_config=np.array(config_json),
        ))
    except OSError as exc:
        raise StorageError(
            f"cannot write sharded index to {npz_path(path)}: {exc}"
        ) from exc


def load_sharded_index(path: str | os.PathLike):
    """Load a sharded index written by :func:`save_sharded_index`."""
    from repro.serving.sharding import ShardedIndex, ShardedIndexConfig

    data = _verified_load(path)
    try:
        if str(data["kind"]) != _SHARDED_KIND:
            raise IndexCorruptionError(
                f"{npz_path(path)} is not a sharded-index archive "
                f"(kind={str(data['kind'])!r})",
                details={"path": npz_path(path)},
            )
        num_shards = int(data["num_shards"])
        has_pivots = bool(int(data["has_pivots"]))
        pivots = _unpack_ragged(data["pivot_values"], data["pivot_offsets"])
        serving_kwargs = json.loads(str(data["serving_config"]))
    except (KeyError, ValueError, json.JSONDecodeError) as exc:
        raise IndexCorruptionError(
            f"cannot read sharded index from {npz_path(path)}: {exc}",
            details={"path": npz_path(path), "cause": type(exc).__name__},
        ) from exc
    shards = [load_index(_shard_path(path, i)) for i in range(num_shards)]
    config = ShardedIndexConfig(index=shards[0].config, **serving_kwargs)
    index = ShardedIndex(config)
    index.shards = shards
    index.metric_distance = shards[0].metric_distance
    index.cluster_distance = shards[0].cluster_distance
    index.pivots = ([np.asarray(p, dtype=np.float64) for p in pivots]
                    if has_pivots else None)
    index.refresh_bounds()
    return index
