"""``VideoDatabase`` — the adoptable facade over the whole system.

Ingest video segments, get an incrementally maintained STRG-Index, and
query by example clip or by example trajectory:

    >>> db = VideoDatabase()
    >>> db.ingest(video_segment)                    # frames in
    >>> hits = db.query_clip(query_clip, k=5)       # similar motions out
"""

from __future__ import annotations

import logging
import math
import os
import warnings
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.index import STRGIndex
from repro.core.size import index_size_bytes, strg_raw_size_bytes
from repro.errors import (
    IndexStateError,
    IngestDegradedError,
    RecoveryError,
    StorageError,
)
from repro.graph.object_graph import ObjectGraph
from repro.observability import OBS
from repro.pipeline import PipelineConfig, VideoPipeline
from repro.resilience.journal import (
    IngestJournal,
    RecoveryReport,
    read_journal,
    replay_pending,
)
from repro.resilience.policy import (
    RECOVERABLE_ERRORS,
    FaultPolicy,
    QuarantineRecord,
    quarantine_record,
)
from repro.resilience.retry import RetryPolicy
from repro.storage.serialize import npz_path  # noqa: F401  (re-exported for callers)
from repro.storage.store import open_store
from repro.video.frames import VideoSegment

logger = logging.getLogger(__name__)


@dataclass
class QueryHit:
    """One retrieval result: the matched OG, its distance and clip ref."""

    distance: float
    og: ObjectGraph
    clip_ref: Any


class VideoDatabase:
    """A content-based video database built on the STRG-Index.

    Ingestion is fault tolerant (see ``docs/RESILIENCE.md``): the
    ``fault_policy`` decides whether a segment failing with a
    recoverable error crashes the batch (``fail-fast``), is quarantined
    (``skip-and-quarantine``), or is retried under ``retry_policy``
    first (``retry-then-skip``, the default).  ``drop_tolerance`` bounds
    the quarantined fraction — past it, ingestion escalates to
    :class:`~repro.errors.IngestDegradedError`.  An optional
    ``journal_path`` appends one JSONL record per segment plus one per
    snapshot save, enabling :meth:`recover` after a crash.

    With ``shards`` set, the database maintains a
    :class:`~repro.serving.sharding.ShardedIndex` of that many shards
    instead of a monolithic tree — query results stay bit-identical,
    and the index plugs straight into the serving layer
    (``LiveIndex`` / ``QueryService``).
    """

    def __init__(self, config: PipelineConfig | None = None, *,
                 fault_policy: FaultPolicy | str = FaultPolicy.RETRY_THEN_SKIP,
                 retry_policy: RetryPolicy | None = None,
                 drop_tolerance: float = 0.5,
                 drop_grace: int = 8,
                 journal_path: str | os.PathLike | None = None,
                 shards: int | None = None,
                 placement: str = "affine"):
        self.pipeline = VideoPipeline(config)
        self._index: STRGIndex | None = None
        self._index_loader = None
        self.shards = shards
        self.placement = placement
        self._ingested: list[str] = []
        self._raw_strg_bytes = 0
        self.fault_policy = FaultPolicy.coerce(fault_policy)
        self.retry_policy = retry_policy or RetryPolicy(max_attempts=3,
                                                        base_delay=0.05)
        self.drop_tolerance = drop_tolerance
        self.drop_grace = drop_grace
        self.quarantine: list[QuarantineRecord] = []
        self._retries = 0
        self._last_error: dict[str, Any] | None = None
        self._journal = (IngestJournal(journal_path)
                         if journal_path is not None else None)
        self.recovery: RecoveryReport | None = None
        #: Store backing a lazy (mmap) open — lets budgeted queries run
        #: against the out-of-core sketch tier without ever
        #: materializing the tree.  ``_ooc_sketch`` caches the attached
        #: sketch (``False`` once probing found none).
        self._store = None
        self._store_mmap = False
        self._ooc_sketch: Any = None
        #: Default snapshot location used by :meth:`save`; set by
        #: :func:`repro.open_database`, :meth:`load` and :meth:`recover`.
        self.path: str | None = None

    # -- index binding -------------------------------------------------------

    @property
    def index(self) -> STRGIndex | None:
        """The database's index, materialized on first touch.

        A database opened with ``mmap`` (via :func:`repro.open_database`
        or :meth:`load`) defers tree materialization: ``open`` is O(1)
        — one manifest read — and the tree is built from the store's
        zero-copy views the first time anything touches ``db.index``.
        """
        if self._index is None and self._index_loader is not None:
            loader, self._index_loader = self._index_loader, None
            with OBS.span("database.materialize"):
                self._index = loader()
        return self._index

    @index.setter
    def index(self, value: STRGIndex | None) -> None:
        self._index = value
        self._index_loader = None

    @property
    def index_loaded(self) -> bool:
        """Whether the index is materialized (False while open is lazy)."""
        return self._index is not None

    # -- ingestion -----------------------------------------------------------

    def ingest(self, video: VideoSegment, parse_shots: bool = False,
               workers: int | None = None) -> int:
        """Run the full pipeline on a segment and index its OGs.

        Returns the number of Object Graphs extracted (0 when the
        segment was quarantined under a skipping fault policy).
        Repeated calls extend the same index (backgrounds are matched at
        the root level).  With ``parse_shots=True`` the video is first
        parsed into shots (Section 1's "issue 1"); each shot is ingested
        as its own segment, so scene changes land in separate root
        records.

        ``workers > 1`` fans the segment's per-frame segmentation + RAG
        construction out across worker processes (see
        :meth:`VideoPipeline.build_strg <repro.pipeline.VideoPipeline.build_strg>`).
        Fault-injection points, quarantine decisions, journal ordering
        and index contents are identical at every worker count: the
        hooks fire in the coordinator, in frame order, before any
        fan-out, and a retry re-runs the whole decomposition exactly as
        the serial path does.
        """
        if parse_shots:
            from repro.video.shots import split_into_shots

            return sum(self.ingest(shot, workers=workers)
                       for shot in split_into_shots(video))
        with OBS.span("ingest.segment", segment=video.name,
                      workers=workers) as sp:
            attempts = 1

            def count_retry(attempt, exc, delay):
                nonlocal attempts
                attempts = attempt + 1
                self._retries += 1
                OBS.count("ingest.retries")
                logger.info("segment %r attempt %d failed: %s",
                            video.name, attempt, exc)

            retry_policy = (self.retry_policy
                            if self.fault_policy is FaultPolicy.RETRY_THEN_SKIP
                            else None)
            try:
                clip = self.pipeline.process_clip(
                    video, retry_policy=retry_policy,
                    on_retry=count_retry, workers=workers,
                )
                decomposition = clip.decomposition
            except RECOVERABLE_ERRORS as exc:
                self._record_error(video.name, exc)
                if self.fault_policy is FaultPolicy.FAIL_FAST:
                    raise
                OBS.count("ingest.segments_quarantined")
                sp.set(status="quarantined")
                self._quarantine(video.name, exc, attempts)
                return 0
            self._index_decomposition(video, decomposition)
            self._ingested.append(video.name)
            self._raw_strg_bytes += strg_raw_size_bytes(
                decomposition.object_graphs,
                decomposition.background,
                video.num_frames,
            )
            n = len(decomposition.object_graphs)
            OBS.count("ingest.segments_ok")
            sp.set(status="ok", ogs=n)
            self._journal_append({"event": "segment", "segment": video.name,
                                  "ogs": n, "status": "ok"})
            logger.debug("ingested segment %r: %d OGs", video.name, n)
            return n

    def ingest_many(self, videos: Sequence[VideoSegment],
                    parse_shots: bool = False,
                    workers: int | None = None) -> dict[str, int]:
        """Batch ingest; keeps going over quarantined segments.

        Returns ``{"segments": ok_count, "quarantined": q_count,
        "ogs": total_ogs}``.  :class:`~repro.errors.IngestDegradedError`
        (drop tolerance exceeded) and non-recoverable errors propagate.
        Segments are journaled strictly in input order; ``workers``
        parallelizes within each segment (see :meth:`ingest`).
        """
        before_q = len(self.quarantine)
        before_s = len(self._ingested)
        ogs = 0
        for video in videos:
            ogs += self.ingest(video, parse_shots=parse_shots,
                               workers=workers)
        return {
            "segments": len(self._ingested) - before_s,
            "quarantined": len(self.quarantine) - before_q,
            "ogs": ogs,
        }

    def _make_index(self):
        """A fresh index honouring the database's sharding settings."""
        if self.shards is None:
            return STRGIndex(self.pipeline.config.index)
        from repro.serving.sharding import ShardedIndex, ShardedIndexConfig

        return ShardedIndex(ShardedIndexConfig(
            num_shards=self.shards,
            placement=self.placement,
            index=self.pipeline.config.index,
        ))

    def _index_decomposition(self, video: VideoSegment,
                             decomposition) -> None:
        """Insert a decomposition's OGs into the index (build on first)."""
        refs = [
            {"video": video.name, "og": og.og_id}
            for og in decomposition.object_graphs
        ]
        if self.index is None:
            self.index = self._make_index()
            if decomposition.object_graphs:
                self.index.build(decomposition.object_graphs,
                                 decomposition.background, refs)
        else:
            for og, ref in zip(decomposition.object_graphs, refs):
                self.index.insert(og, decomposition.background, ref)

    def _record_error(self, segment: str, exc: BaseException) -> None:
        self._last_error = {
            "segment": segment,
            "error_type": type(exc).__name__,
            "message": str(exc),
            "details": dict(getattr(exc, "details", {}) or {}),
        }

    def _quarantine(self, segment: str, exc: BaseException,
                    attempts: int) -> None:
        """Record a skipped segment and enforce the drop tolerance."""
        record = quarantine_record(segment, exc, attempts)
        self.quarantine.append(record)
        self._journal_append({"event": "segment", "segment": segment,
                              "ogs": 0, "status": "quarantined",
                              "error": record.error_type})
        logger.warning("quarantined segment %r after %d attempt(s): %s",
                       segment, attempts, exc)
        processed = len(self._ingested) + len(self.quarantine)
        fraction = len(self.quarantine) / processed
        if processed >= self.drop_grace and fraction > self.drop_tolerance:
            logger.error("ingest degraded: %d/%d segments quarantined",
                         len(self.quarantine), processed)
            raise IngestDegradedError(
                f"{len(self.quarantine)}/{processed} segments quarantined "
                f"(tolerance {self.drop_tolerance:.0%})",
                details={
                    "quarantined": len(self.quarantine),
                    "processed": processed,
                    "tolerance": self.drop_tolerance,
                    "last_segment": segment,
                },
            ) from exc

    def _journal_append(self, record: dict) -> None:
        if self._journal is not None:
            self._journal.append(record)

    def ingest_object_graphs(self, ogs: Sequence[ObjectGraph],
                             source: str = "external") -> int:
        """Index pre-extracted OGs (e.g. from a trajectory feed)."""
        if not ogs:
            return 0
        if self.index is None:
            self.index = self._make_index()
            self.index.build(list(ogs))
        else:
            for og in ogs:
                self.index.insert(og)
        self._ingested.append(source)
        return len(ogs)

    def ingest_service(self, *, state_dir: str | os.PathLike | None = None,
                       config=None):
        """A streaming :class:`~repro.serving.ingest.IngestService` over
        this database's index.

        The service takes ownership of the write path: the current index
        is frozen into the first published snapshot (direct
        :meth:`ingest` calls will fail on the frozen index), and after
        every committed job ``self.index`` is repointed at the newest
        snapshot — so :meth:`knn` / :meth:`query_clip` always see the
        freshest queryable state.  With ``state_dir`` the service
        journals, spools and checkpoints there;
        ``IngestService.recover(state_dir, database=db)`` rebuilds both
        the service and the binding after a crash.
        """
        from repro.serving.ingest import IngestService
        from repro.serving.snapshot import LiveIndex

        if self.index is None:
            self.index = self._make_index()
        live = LiveIndex(self.index)
        return IngestService(live, self.pipeline, state_dir=state_dir,
                             config=config, database=self)

    # -- queries ----------------------------------------------------------------

    def query_clip(self, clip: VideoSegment, k: int = 5) -> list[QueryHit]:
        """Query by example clip (Algorithm 3 end to end).

        The clip runs through the same extraction pipeline; each extracted
        query OG is searched and the best ``k`` overall hits are returned.
        """
        self._require_index()
        decomposition = self.pipeline.decompose(clip)
        if not decomposition.object_graphs:
            return []
        hits: dict[int, QueryHit] = {}
        for og in decomposition.object_graphs:
            for d, match, ref in self.index.knn(
                og, k, background=decomposition.background
            ):
                existing = hits.get(match.og_id)
                if existing is None or d < existing.distance:
                    hits[match.og_id] = QueryHit(d, match, ref)
        ranked = sorted(hits.values(), key=lambda h: h.distance)
        return ranked[:k]

    def knn(self, example: ObjectGraph | np.ndarray, k: int = 5,
            search_budget: int | None = None) -> list[QueryHit]:
        """The ``k`` indexed OGs nearest to an example motion.

        ``example`` is either an :class:`ObjectGraph` or a raw
        trajectory (``(n, 2)`` array of positions); raw values are
        wrapped into a query OG first.  ``k = 0`` yields ``[]`` (even on
        an empty database) and ``k`` beyond the corpus size returns
        every OG, ranked — neither raises.

        ``search_budget`` caps the exact distance evaluations the query
        may spend, trading recall for a sublinear scan through the
        approximate sketch tier (see ``docs/SEARCH.md``).  The default
        ``None`` keeps the exact path, bit-identical to databases
        predating the knob.
        """
        if k == 0:
            return []
        if search_budget is not None and not self.index_loaded:
            # Lazy mmap open + budgeted query: stream the sketch tier
            # straight from the store's columns.  Results are
            # bit-identical to the materialized index's budgeted path,
            # but resident memory stays O(shortlist) instead of
            # O(corpus) — the tree is never built.
            sketch = self._ooc_sketch_tier()
            if sketch is not None:
                from repro.search.sketch import approx_knn

                og = (example if isinstance(example, ObjectGraph)
                      else ObjectGraph.from_values(
                          np.asarray(example, dtype=float)))
                hits = approx_knn(sketch, sketch.replay_distance, og, k,
                                  search_budget)
                return [QueryHit(d, match, ref) for d, match, ref in hits]
        self._require_index()
        og = (example if isinstance(example, ObjectGraph)
              else ObjectGraph.from_values(np.asarray(example, dtype=float)))
        if search_budget is None:
            hits = self.index.knn(og, k)
        else:
            hits = self.index.knn(og, k, search_budget=search_budget)
        return [QueryHit(d, match, ref) for d, match, ref in hits]

    def query(self) -> "Query":
        """A fluent :class:`repro.query.Query` builder over this database.

        ``db.query().similar_to(values).limit(k).run()`` is equivalent
        to building ``Query(db)`` by hand.
        """
        from repro.query import Query

        return Query(self)

    def query_trajectory(self, values: np.ndarray, k: int = 5) -> list[QueryHit]:
        """Deprecated alias of :meth:`knn` (kept for older callers)."""
        warnings.warn(
            "VideoDatabase.query_trajectory is deprecated; use "
            "VideoDatabase.knn (or db.query().example(...).run())",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.knn(values, k)

    def query_by_motion(self, direction: float | None = None,
                        direction_tolerance: float = math.pi / 4,
                        min_velocity: float | None = None,
                        max_velocity: float | None = None,
                        min_duration: int | None = None,
                        region: tuple[float, float, float, float] | None = None,
                        ) -> list[ObjectGraph]:
        """Attribute query over the indexed trajectories.

        Filters: moving ``direction`` (radians, matched within
        ``direction_tolerance``), velocity band, minimum duration in
        frames, and a spatial ``(x0, y0, x1, y1)`` region the trajectory's
        bounding box must intersect.  This is the "various queries on
        moving objects" surface the paper's introduction motivates.
        """
        from repro.graph.attributes import angle_difference

        self._require_index()
        matches = []
        for og in self.index.object_graphs():
            if min_duration is not None and og.duration() < min_duration:
                continue
            velocity = og.mean_velocity()
            if min_velocity is not None and velocity < min_velocity:
                continue
            if max_velocity is not None and velocity > max_velocity:
                continue
            if direction is not None:
                deltas = np.diff(og.values[:, :2], axis=0)
                total = deltas.sum(axis=0)
                heading = math.atan2(total[1], total[0])
                if angle_difference(heading, direction) > direction_tolerance:
                    continue
            if region is not None:
                x0, y0, x1, y1 = og.bounding_box()
                qx0, qy0, qx1, qy1 = region
                if x1 < qx0 or qx1 < x0 or y1 < qy0 or qy1 < y0:
                    continue
            matches.append(og)
        return matches

    def delete(self, og_id: int) -> bool:
        """Remove one OG from the database's index."""
        self._require_index()
        return self.index.delete(og_id)

    def query_subtrajectory(self, values: np.ndarray, k: int = 5
                            ) -> list[QueryHit]:
        """Find trajectories *containing* a motion similar to ``values``.

        Unlike :meth:`query_trajectory` (whole-trajectory similarity),
        this scores each stored OG by the best EGED_M match of any of its
        windows, so a short query motion is found inside longer tracks.
        Linear scan (window matching has no metric key).
        """
        from repro.distance.subsequence import eged_subsequence

        self._require_index()
        scored = []
        for og in self.index.object_graphs():
            match = eged_subsequence(values, og.values)
            scored.append(QueryHit(match.cost, og, (match.start, match.stop)))
        scored.sort(key=lambda hit: hit.distance)
        return scored[:k]

    def expire_before(self, frame: int) -> int:
        """Drop every trajectory that ended before ``frame``.

        The sliding-window retention policy of a live surveillance
        deployment: old motion is evicted while the index structure
        (clusters, backgrounds) is maintained incrementally.  Returns the
        number of trajectories removed.
        """
        self._require_index()
        stale = [og.og_id for og in self.index.object_graphs()
                 if og.end_frame < frame]
        removed = 0
        for og_id in stale:
            if self.index.delete(og_id):
                removed += 1
        return removed

    def _require_index(self) -> None:
        if self.index is None or len(self.index) == 0:
            raise IndexStateError("database is empty; ingest video first")

    def _ooc_sketch_tier(self):
        """Store-attached sketch for budgeted queries on a lazy open.

        Returns the cached out-of-core :class:`SketchIndex`, probing
        the backing store once; ``None`` when unavailable (no columnar
        store, no persisted sketch, sharded store, corruption) — the
        caller then materializes the index and uses the classic path.
        """
        if self._ooc_sketch is not None:
            return self._ooc_sketch or None
        store = self._store
        if (store is None or not self._store_mmap
                or not hasattr(store, "load_sketch")):
            self._ooc_sketch = False
            return None
        try:
            sketch = store.load_sketch(mmap=True)
        except StorageError as exc:
            logger.info(
                "out-of-core sketch unavailable for %s (%s: %s); "
                "budgeted queries will materialize the index",
                store.path, type(exc).__name__, exc)
            sketch = None
        if sketch is None or len(sketch) == 0:
            self._ooc_sketch = False
            return None
        self._ooc_sketch = sketch
        return sketch

    # -- introspection / persistence -----------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Database statistics, including the Eq. 9 vs Eq. 10 sizes."""
        if self.index is None:
            return {"segments": len(self._ingested), "ogs": 0}
        trees = getattr(self.index, "shards", None) or [self.index]
        out = {
            "segments": len(self._ingested),
            "ogs": len(self.index),
            "clusters": self.index.num_clusters(),
            "backgrounds": sum(len(tree.root) for tree in trees),
            "raw_strg_bytes": self._raw_strg_bytes,
            "index_bytes": sum(index_size_bytes(tree) for tree in trees),
        }
        if self.shards is not None:
            out["shards"] = len(trees)
            out["shard_sizes"] = self.index.shard_sizes()
        return out

    def health(self) -> dict[str, Any]:
        """Operational telemetry: counts, quarantine and last error.

        Unlike :meth:`stats` (paper-facing size accounting), this is the
        surface an operator watches: how many segments made it in, how
        many were quarantined and why, how often stages were retried.
        """
        return {
            "fault_policy": self.fault_policy.value,
            "segments_ingested": len(self._ingested),
            "ogs_indexed": 0 if self.index is None else len(self.index),
            "quarantined": len(self.quarantine),
            "quarantined_segments": [q.segment for q in self.quarantine],
            "retries": self._retries,
            "last_error": self._last_error,
            "journal": None if self._journal is None else self._journal.path,
        }

    def save(self, path: str | os.PathLike | None = None,
             format: str = "auto") -> None:
        """Persist the index atomically and journal a checkpoint.

        ``path`` defaults to the database's bound :attr:`path` (set by
        :func:`repro.open_database` / :meth:`load`).  ``format`` picks
        the snapshot format — ``"columnar"`` (memory-mappable ``.strg``
        store), ``"npz"`` (checksummed v2 archive), or ``"auto"``
        (whatever exists at the path; NPZ for a fresh suffix-less
        path).  Every format commits atomically — temp + fsync + rename
        — so a crash mid-save leaves any previous snapshot intact.
        """
        if path is None:
            path = self.path
        if path is None:
            raise StorageError(
                "save() needs a path: none given and the database has no "
                "bound path (open it with repro.open_database(path))"
            )
        self._require_index()
        store = open_store(path, format=format)
        store.write_index(self.index)
        self.path = store.path
        self._journal_append({"event": "checkpoint",
                              "path": store.path,
                              "format": store.format,
                              "ogs": len(self.index),
                              "segments": len(self._ingested)})
        logger.info("saved %s snapshot to %s (%d OGs)", store.format,
                    store.path, len(self.index))

    @classmethod
    def load(cls, path: str | os.PathLike,
             config: PipelineConfig | None = None,
             mmap: bool | str = False,
             lazy: bool = False,
             **kwargs) -> "VideoDatabase":
        """Restore a database from a saved snapshot (any format).

        ``mmap`` — ``True`` maps trajectory columns read-only instead of
        copying them into RAM (columnar stores only; NPZ archives raise
        with a pointer at ``repro convert``); ``"auto"`` maps when the
        format supports it.  ``lazy=True`` defers tree materialization
        until :attr:`index` is first touched, making the open itself
        O(1).  With ``lazy=True`` and mmap enabled on a columnar store,
        budgeted queries (``knn(..., search_budget=N)``) run fully
        out-of-core: the sketch tier streams from the store's mmap'd
        columns and only the shortlist's series are fetched, so the
        tree is never built (see ``docs/SEARCH.md``).
        ``**kwargs`` are the constructor's resilience options
        (``fault_policy``, ``retry_policy``, ``journal_path``, ...).
        """
        db = cls(config, **kwargs)
        store = open_store(path)
        if lazy and not store.exists():
            # The lazy path must fail at open time, not at first touch.
            raise StorageError(
                f"cannot read {store.path}: no snapshot found")
        use_mmap = store.supports_mmap if mmap == "auto" else bool(mmap)

        def materialize():
            index = store.load_index(mmap=use_mmap)
            if getattr(index, "shards", None) is not None:
                db.shards = index.num_shards
                db.placement = index.config.placement
            return index

        if lazy:
            db._index_loader = materialize
            db._store = store
            db._store_mmap = use_mmap
        else:
            db.index = materialize()
        db._ingested.append(f"loaded:{os.fspath(path)}")
        db.path = store.path
        return db

    @classmethod
    def recover(cls, path: str | os.PathLike,
                journal_path: str | os.PathLike | None = None,
                config: PipelineConfig | None = None) -> "VideoDatabase":
        """Reconstruct state after a crash from snapshot + journal.

        Loads the last complete snapshot at ``path`` (if any survives
        integrity checks) and replays the ingest journal (default:
        ``<path>.journal``) to find segments that were ingested after
        the last checkpoint — i.e. work the snapshot does not contain.
        The result's ``recovery`` attribute is a
        :class:`~repro.resilience.journal.RecoveryReport` whose
        ``pending_segments`` the caller should re-ingest.

        Raises :class:`~repro.errors.RecoveryError` when neither a
        usable snapshot nor a journal exists.
        """
        target = open_store(path).path
        journal_path = (os.fspath(journal_path) if journal_path is not None
                        else target + ".journal")
        records, truncated = read_journal(journal_path)
        snapshot_error: str | None = None
        db: "VideoDatabase | None" = None
        try:
            db = cls.load(target, config)
            snapshot_loaded = True
        except StorageError as exc:
            snapshot_error = f"{type(exc).__name__}: {exc}"
            snapshot_loaded = False
            logger.warning("recover: snapshot %s unusable: %s", target, exc)
        if not snapshot_loaded:
            if not records:
                raise RecoveryError(
                    f"nothing to recover at {target}: no valid snapshot "
                    f"and no journal records at {journal_path}",
                    details={"path": target, "journal": journal_path,
                             "snapshot_error": snapshot_error},
                )
            db = cls(config)
        db.path = target
        pending, quarantined = replay_pending(records)
        if not snapshot_loaded:
            # No snapshot survived: every journaled-ok segment is pending.
            pending = [str(r.get("segment")) for r in records
                       if r.get("event") == "segment"
                       and r.get("status") == "ok"]
        db._journal = IngestJournal(journal_path)
        db.recovery = RecoveryReport(
            snapshot_loaded=snapshot_loaded,
            snapshot_path=target,
            snapshot_ogs=0 if db.index is None else len(db.index),
            snapshot_error=snapshot_error,
            journal_path=journal_path,
            journal_truncated=truncated,
            pending_segments=pending,
            quarantined_segments=quarantined,
        )
        logger.info("recovered from %s: snapshot=%s, %d pending segment(s)",
                    target, snapshot_loaded, len(pending))
        return db
