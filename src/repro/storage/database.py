"""``VideoDatabase`` — the adoptable facade over the whole system.

Ingest video segments, get an incrementally maintained STRG-Index, and
query by example clip or by example trajectory:

    >>> db = VideoDatabase()
    >>> db.ingest(video_segment)                    # frames in
    >>> hits = db.query_clip(query_clip, k=5)       # similar motions out
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.index import STRGIndex
from repro.core.size import index_size_bytes, strg_raw_size_bytes
from repro.errors import IndexStateError
from repro.graph.object_graph import ObjectGraph
from repro.pipeline import PipelineConfig, VideoPipeline
from repro.storage.serialize import load_index, save_index
from repro.video.frames import VideoSegment


@dataclass
class QueryHit:
    """One retrieval result: the matched OG, its distance and clip ref."""

    distance: float
    og: ObjectGraph
    clip_ref: Any


class VideoDatabase:
    """A content-based video database built on the STRG-Index."""

    def __init__(self, config: PipelineConfig | None = None):
        self.pipeline = VideoPipeline(config)
        self.index: STRGIndex | None = None
        self._ingested: list[str] = []
        self._raw_strg_bytes = 0

    # -- ingestion -----------------------------------------------------------

    def ingest(self, video: VideoSegment, parse_shots: bool = False) -> int:
        """Run the full pipeline on a segment and index its OGs.

        Returns the number of Object Graphs extracted.  Repeated calls
        extend the same index (backgrounds are matched at the root level).
        With ``parse_shots=True`` the video is first parsed into shots
        (Section 1's "issue 1"); each shot is ingested as its own segment,
        so scene changes land in separate root records.
        """
        if parse_shots:
            from repro.video.shots import split_into_shots

            return sum(self.ingest(shot) for shot in split_into_shots(video))
        decomposition, self.index = self.pipeline.process(video, self.index)
        self._ingested.append(video.name)
        self._raw_strg_bytes += strg_raw_size_bytes(
            decomposition.object_graphs,
            decomposition.background,
            video.num_frames,
        )
        return len(decomposition.object_graphs)

    def ingest_object_graphs(self, ogs: Sequence[ObjectGraph],
                             source: str = "external") -> int:
        """Index pre-extracted OGs (e.g. from a trajectory feed)."""
        if not ogs:
            return 0
        if self.index is None:
            self.index = STRGIndex(self.pipeline.config.index)
            self.index.build(list(ogs))
        else:
            for og in ogs:
                self.index.insert(og)
        self._ingested.append(source)
        return len(ogs)

    # -- queries ----------------------------------------------------------------

    def query_clip(self, clip: VideoSegment, k: int = 5) -> list[QueryHit]:
        """Query by example clip (Algorithm 3 end to end).

        The clip runs through the same extraction pipeline; each extracted
        query OG is searched and the best ``k`` overall hits are returned.
        """
        self._require_index()
        decomposition = self.pipeline.decompose(clip)
        if not decomposition.object_graphs:
            return []
        hits: dict[int, QueryHit] = {}
        for og in decomposition.object_graphs:
            for d, match, ref in self.index.knn(
                og, k, background=decomposition.background
            ):
                existing = hits.get(match.og_id)
                if existing is None or d < existing.distance:
                    hits[match.og_id] = QueryHit(d, match, ref)
        ranked = sorted(hits.values(), key=lambda h: h.distance)
        return ranked[:k]

    def query_trajectory(self, values: np.ndarray, k: int = 5) -> list[QueryHit]:
        """Query by a raw trajectory (``(n, 2)`` array of positions)."""
        self._require_index()
        og = ObjectGraph.from_values(values)
        return [
            QueryHit(d, match, ref)
            for d, match, ref in self.index.knn(og, k)
        ]

    def query_by_motion(self, direction: float | None = None,
                        direction_tolerance: float = math.pi / 4,
                        min_velocity: float | None = None,
                        max_velocity: float | None = None,
                        min_duration: int | None = None,
                        region: tuple[float, float, float, float] | None = None,
                        ) -> list[ObjectGraph]:
        """Attribute query over the indexed trajectories.

        Filters: moving ``direction`` (radians, matched within
        ``direction_tolerance``), velocity band, minimum duration in
        frames, and a spatial ``(x0, y0, x1, y1)`` region the trajectory's
        bounding box must intersect.  This is the "various queries on
        moving objects" surface the paper's introduction motivates.
        """
        from repro.graph.attributes import angle_difference

        self._require_index()
        matches = []
        for og in self.index.object_graphs():
            if min_duration is not None and og.duration() < min_duration:
                continue
            velocity = og.mean_velocity()
            if min_velocity is not None and velocity < min_velocity:
                continue
            if max_velocity is not None and velocity > max_velocity:
                continue
            if direction is not None:
                deltas = np.diff(og.values[:, :2], axis=0)
                total = deltas.sum(axis=0)
                heading = math.atan2(total[1], total[0])
                if angle_difference(heading, direction) > direction_tolerance:
                    continue
            if region is not None:
                x0, y0, x1, y1 = og.bounding_box()
                qx0, qy0, qx1, qy1 = region
                if x1 < qx0 or qx1 < x0 or y1 < qy0 or qy1 < y0:
                    continue
            matches.append(og)
        return matches

    def delete(self, og_id: int) -> bool:
        """Remove one OG from the database's index."""
        self._require_index()
        return self.index.delete(og_id)

    def query_subtrajectory(self, values: np.ndarray, k: int = 5
                            ) -> list[QueryHit]:
        """Find trajectories *containing* a motion similar to ``values``.

        Unlike :meth:`query_trajectory` (whole-trajectory similarity),
        this scores each stored OG by the best EGED_M match of any of its
        windows, so a short query motion is found inside longer tracks.
        Linear scan (window matching has no metric key).
        """
        from repro.distance.subsequence import eged_subsequence

        self._require_index()
        scored = []
        for og in self.index.object_graphs():
            match = eged_subsequence(values, og.values)
            scored.append(QueryHit(match.cost, og, (match.start, match.stop)))
        scored.sort(key=lambda hit: hit.distance)
        return scored[:k]

    def expire_before(self, frame: int) -> int:
        """Drop every trajectory that ended before ``frame``.

        The sliding-window retention policy of a live surveillance
        deployment: old motion is evicted while the index structure
        (clusters, backgrounds) is maintained incrementally.  Returns the
        number of trajectories removed.
        """
        self._require_index()
        stale = [og.og_id for og in self.index.object_graphs()
                 if og.end_frame < frame]
        removed = 0
        for og_id in stale:
            if self.index.delete(og_id):
                removed += 1
        return removed

    def _require_index(self) -> None:
        if self.index is None or len(self.index) == 0:
            raise IndexStateError("database is empty; ingest video first")

    # -- introspection / persistence -----------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Database statistics, including the Eq. 9 vs Eq. 10 sizes."""
        if self.index is None:
            return {"segments": len(self._ingested), "ogs": 0}
        return {
            "segments": len(self._ingested),
            "ogs": len(self.index),
            "clusters": self.index.num_clusters(),
            "backgrounds": len(self.index.root),
            "raw_strg_bytes": self._raw_strg_bytes,
            "index_bytes": index_size_bytes(self.index),
        }

    def save(self, path: str | os.PathLike) -> None:
        """Persist the index (see :func:`repro.storage.serialize.save_index`)."""
        self._require_index()
        save_index(path, self.index)

    @classmethod
    def load(cls, path: str | os.PathLike,
             config: PipelineConfig | None = None) -> "VideoDatabase":
        """Restore a database from a saved index."""
        db = cls(config)
        db.index = load_index(path)
        db._ingested.append(f"loaded:{os.fspath(path)}")
        return db
