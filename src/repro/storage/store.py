"""Format-negotiating snapshot facade — ``open_store()``.

Three on-disk snapshot formats coexist:

- ``columnar`` — a ``<name>.strg/`` directory of raw memory-mappable
  ``.npy`` segments (:mod:`repro.storage.columnar`), monolithic or
  sharded;
- ``npz`` — one checksummed v2 NPZ archive
  (:func:`repro.storage.serialize.save_index`);
- ``sharded-npz`` — a meta NPZ plus ``<base>.shard<i>.npz`` per shard.

:func:`open_store` autodetects which one a path holds (or should hold)
and returns a store object with one uniform protocol::

    store = open_store("corpus")          # finds corpus.strg/ or corpus.npz
    index = store.load_index(mmap=True)   # mmap only where supported
    store.write_index(index)              # full snapshot write
    store.append(writes)                  # O(delta), columnar only
    store.checkpoint(index, writes)       # cheapest valid durability step
    store.verify()                        # deep integrity pass

Every store exposes ``format``, ``supports_mmap``, ``supports_append``,
``exists()`` and ``describe()``, so callers (``VideoDatabase``,
``IngestService``, the CLI) never branch on file extensions again.
"""

from __future__ import annotations

import os
from typing import Any, Sequence

from repro.errors import InvalidParameterError, StorageError
from repro.storage import serialize
from repro.storage.columnar import (
    STORE_SUFFIX,
    ColumnarStore,
    columnar_path,
    is_columnar_store,
)

#: Formats accepted by ``open_store`` / ``db.save`` / ``--store-format``.
FORMATS = ("auto", "columnar", "npz")


class NpzStore:
    """The checksummed v2 NPZ format behind the uniform store protocol.

    Wraps :func:`~repro.storage.serialize.save_index` /
    :func:`~repro.storage.serialize.load_index` and their sharded
    variants.  NPZ members are zip-compressed, so this format can never
    memory-map (``load_index(mmap=True)`` fails with a pointer at
    ``repro convert``) and never append (``checkpoint`` always rewrites
    the whole archive).
    """

    supports_mmap = False
    supports_append = False

    def __init__(self, path: str | os.PathLike):
        self.path = serialize.npz_path(path)

    def exists(self) -> bool:
        return os.path.isfile(self.path)

    @property
    def is_sharded(self) -> bool:
        return serialize.is_sharded_snapshot(self.path)

    @property
    def format(self) -> str:
        return "sharded-npz" if self.is_sharded else "npz"

    def load_index(self, mmap: bool = False) -> Any:
        if mmap:
            raise StorageError(
                f"{self.path} is an NPZ archive: compressed members "
                "cannot be memory-mapped. Migrate with `repro convert "
                f"{self.path}` (or store.write via format='columnar') "
                "to get zero-copy mmap loads."
            )
        if self.is_sharded:
            return serialize.load_sharded_index(self.path)
        return serialize.load_index(self.path)

    def write_index(self, index: Any) -> str:
        if getattr(index, "shards", None) is not None:
            return serialize.save_sharded_index(self.path, index)
        serialize.save_index(self.path, index)
        return self.path

    def append(self, writes: Sequence[Any]) -> None:
        raise StorageError(
            f"{self.path} is an NPZ archive: the format has no "
            "incremental append. Use checkpoint() for a full rewrite, "
            f"or migrate with `repro convert {self.path}`."
        )

    def checkpoint(self, index: Any,
                   writes: Sequence[Any] | None = None) -> None:
        """Full-rewrite durability step (NPZ has no cheaper one)."""
        self.write_index(index)

    def verify(self) -> dict[str, Any]:
        """Checksum-verify the archive (and shard archives) in full."""
        files = [self.path]
        if self.is_sharded:
            data = serialize._verified_load(self.path)
            files += [serialize._shard_path(self.path, i)
                      for i in range(int(data["num_shards"]))]
        total = 0
        for target in files:
            serialize._verified_load(target)
            total += os.path.getsize(target)
        return {"files": len(files), "bytes": total}

    def describe(self) -> dict[str, Any]:
        info: dict[str, Any] = {"path": self.path, "format": self.format}
        if self.exists():
            info["bytes"] = os.path.getsize(self.path)
        return info

    def __repr__(self) -> str:
        return f"NpzStore({self.path!r})"


def detect_format(path: str | os.PathLike) -> str | None:
    """The snapshot format present at ``path``, or ``None``.

    Checks the columnar manifest first (a directory can shadow an
    archive of the same stem), then the NPZ archive, distinguishing
    ``"columnar"`` / ``"sharded-npz"`` / ``"npz"``.
    """
    if is_columnar_store(path):
        return "columnar"
    store = NpzStore(path)
    if store.exists():
        return store.format
    return None


def snapshot_exists(path: str | os.PathLike) -> bool:
    """Whether any supported snapshot format exists at ``path``."""
    return detect_format(path) is not None


def open_store(path: str | os.PathLike,
               format: str = "auto") -> ColumnarStore | NpzStore:
    """Open (or target) the snapshot at ``path`` behind one protocol.

    ``format="auto"`` resolves an *existing* snapshot by content — the
    columnar manifest, then the NPZ archive.  When nothing exists yet,
    the suffix decides what a subsequent ``write_index`` will create:
    ``.strg`` means columnar, anything else the (default) NPZ format —
    matching what every pre-existing caller wrote.  Pass
    ``format="columnar"`` / ``"npz"`` to pin the format explicitly.
    """
    if format not in FORMATS:
        raise InvalidParameterError(
            f"unknown store format {format!r} (expected one of {FORMATS})")
    if format == "columnar":
        return ColumnarStore(path)
    if format == "npz":
        return NpzStore(path)
    detected = detect_format(path)
    if detected == "columnar":
        return ColumnarStore(path)
    if detected is not None:
        return NpzStore(path)
    if os.fspath(path).endswith(STORE_SUFFIX):
        return ColumnarStore(path)
    return NpzStore(path)


def store_path(path: str | os.PathLike, format: str = "auto") -> str:
    """The normalized on-disk location ``open_store`` would use."""
    store = open_store(path, format)
    return store.path


def convert(source: str | os.PathLike,
            dest: str | os.PathLike | None = None,
            format: str = "columnar",
            verify: bool = True) -> ColumnarStore | NpzStore:
    """Migrate a snapshot between formats (default: NPZ → columnar).

    Loads the source through its own format, writes the destination
    with the target format's atomic commit protocol (temp + fsync +
    rename, like ``_atomic_savez``), and — with ``verify=True`` — runs
    the destination's deep integrity pass before returning it.
    ``dest=None`` converts in place next to the source (``corpus.npz``
    → ``corpus.strg/`` and vice versa); the source is left untouched.
    """
    source_store = open_store(source)
    if not source_store.exists():
        raise StorageError(f"cannot convert {os.fspath(source)!s}: "
                           "no snapshot found")
    if dest is None:
        base = source_store.path
        for suffix in (".npz", STORE_SUFFIX):
            if base.endswith(suffix):
                base = base[:-len(suffix)]
                break
        dest = base
    dest_store = open_store(dest, format)
    if os.path.abspath(str(dest_store.path)) \
            == os.path.abspath(str(source_store.path)):
        raise InvalidParameterError(
            f"convert source and destination are both "
            f"{source_store.path}: nothing to do")
    index = source_store.load_index()
    dest_store.write_index(index)
    if verify:
        dest_store.verify()
    return dest_store


__all__ = [
    "FORMATS",
    "ColumnarStore",
    "NpzStore",
    "columnar_path",
    "convert",
    "detect_format",
    "open_store",
    "snapshot_exists",
    "store_path",
]
