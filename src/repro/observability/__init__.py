"""``repro.observability`` — tracing, metrics and profiling for the pipeline.

One switch turns the whole subsystem on::

    from repro import observability

    observability.configure(enabled=True)
    db = repro.open_database()
    db.ingest(video)
    hits = db.knn(example, k=5)

    print(observability.render_trace_tree())       # nested span timings
    print(observability.export_metrics_prometheus())
    observability.export_trace_jsonl("trace.jsonl")

Design
------
- A process-global :class:`~repro.observability.trace.Tracer` records
  nestable spans (wall time, CPU time, optional ``tracemalloc`` peaks)
  for every pipeline stage: ``ingest.segment``,
  ``pipeline.segmentation``, ``pipeline.tracking``,
  ``pipeline.decomposition``, ``index.build``, ``clustering.em.fit``,
  ``index.knn`` and friends.
- A process-global
  :class:`~repro.observability.registry.MetricsRegistry` holds counters,
  gauges and histograms (``distance.pairs_computed``, ``cache.hits``,
  ``index.leaf_scans``, ``mtree.node_visits``, ``em.iterations``,
  ``ingest.segments_quarantined`` ...), exportable as JSON and as
  Prometheus text format.
- Everything is **off by default**.  Disabled, every hook is a single
  attribute check — the instrumented kernels run at their PR 2 speed
  (``benchmarks/bench_observability.py`` holds the overhead under 3%).

Instrumented modules import the :data:`OBS` singleton and guard on
``OBS.enabled``; user code should only use the module-level functions
(:func:`configure`, :func:`span`, :func:`metrics`, the exporters).

See ``docs/OBSERVABILITY.md`` for the span/metric naming scheme.
"""

from __future__ import annotations

import json
import tracemalloc
from typing import Any

from repro.observability.registry import (
    DEFAULT_BUCKETS,
    CacheStats,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.trace import Span, Tracer

__all__ = [
    "CacheStats",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS",
    "Span",
    "Tracer",
    "configure",
    "count",
    "export_metrics_json",
    "export_metrics_prometheus",
    "export_trace_jsonl",
    "gauge",
    "is_enabled",
    "metrics",
    "observe",
    "registry",
    "render_trace_tree",
    "reset",
    "span",
    "tracer",
]


class _NullSpan:
    """Reusable no-op stand-in returned while observability is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Observability:
    """Process-global observability state (use the :data:`OBS` singleton).

    Hot paths read :attr:`enabled` directly — one attribute access —
    and only touch the registry/tracer when it is ``True``.
    """

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(self):
        self.enabled = False
        self.registry = MetricsRegistry()
        self.tracer = Tracer()

    # -- hooks used by instrumented modules -----------------------------------

    def span(self, name: str, **attrs):
        """A traced span when enabled; a shared no-op otherwise."""
        if not self.enabled:
            return _NULL_SPAN
        return self.tracer.span(name, **attrs)

    def count(self, name: str, n: int | float = 1) -> None:
        if self.enabled:
            self.registry.counter(name).inc(n)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.registry.gauge(name).set(value)

    def observe(self, name: str, value: float,
                buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if self.enabled:
            self.registry.histogram(name, buckets).observe(value)


#: The singleton every instrumented module guards on.
OBS = Observability()


def configure(enabled: bool = True, *,
              registry: MetricsRegistry | None = None,
              tracer: Tracer | None = None,
              trace_memory: bool | None = None,
              reset_state: bool = False) -> Observability:
    """Turn observability on or off (process-global).

    Parameters
    ----------
    enabled:
        Master switch.  Disabled (the default state) every hook costs a
        single attribute check.
    registry, tracer:
        Swap in fresh sinks (e.g. per test).  Omitted, the current ones
        are kept.
    trace_memory:
        Record ``tracemalloc`` allocation deltas and peaks per span.
        Starts ``tracemalloc`` if it is not already tracing (this slows
        allocation-heavy code — profiling only).
    reset_state:
        Clear the (kept or new) registry and tracer before returning.
    """
    if registry is not None:
        OBS.registry = registry
    if tracer is not None:
        OBS.tracer = tracer
    if trace_memory is not None:
        OBS.tracer.trace_memory = trace_memory
        if trace_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
    if reset_state:
        OBS.registry.reset()
        OBS.tracer.reset()
    OBS.enabled = bool(enabled)
    return OBS


def is_enabled() -> bool:
    """Whether instrumentation hooks are live."""
    return OBS.enabled


def span(name: str, **attrs):
    """Context manager timing a named region (no-op while disabled)."""
    return OBS.span(name, **attrs)


def count(name: str, n: int | float = 1) -> None:
    """Increment a counter (no-op while disabled)."""
    OBS.count(name, n)


def gauge(name: str, value: float) -> None:
    """Set a gauge (no-op while disabled)."""
    OBS.gauge(name, value)


def observe(name: str, value: float,
            buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
    """Record a histogram observation (no-op while disabled)."""
    OBS.observe(name, value, buckets)


def registry() -> MetricsRegistry:
    """The live metrics registry."""
    return OBS.registry


def tracer() -> Tracer:
    """The live tracer."""
    return OBS.tracer


def _collect_ambient() -> None:
    """Fold ambient library state into the registry before export.

    Today that is the process-wide distance cache: its
    :class:`CacheStats` counters surface as ``cache.*`` gauges so the
    one registry answers for the whole system — the blessed replacement
    for reaching into ``repro.distance.cache`` internals.
    """
    from repro.distance.cache import get_default_cache

    cache = get_default_cache()
    if cache is None:
        return
    for key, value in cache.stats.as_dict().items():
        OBS.registry.gauge(f"cache.{key}").set(value)
    OBS.registry.gauge("cache.entries").set(len(cache))


def metrics() -> dict[str, Any]:
    """Unified flat snapshot of every metric (including cache stats).

    Works with observability disabled too: ambient state (the distance
    cache) is collected at call time, so ``metrics()["cache.hits"]`` is
    always current.
    """
    _collect_ambient()
    return OBS.registry.as_dict()


def export_metrics_json(path=None) -> str:
    """Metrics snapshot as a JSON document (optionally written to ``path``)."""
    text = json.dumps(metrics(), indent=2, sort_keys=True) + "\n"
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text


def export_metrics_prometheus(path=None) -> str:
    """Metrics snapshot in Prometheus text exposition format."""
    _collect_ambient()
    text = OBS.registry.to_prometheus()
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text


def export_trace_jsonl(path=None) -> str:
    """Finished span trees as JSONL (optionally written to ``path``)."""
    text = OBS.tracer.to_jsonl()
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text


def render_trace_tree() -> str:
    """Finished span trees as an indented text tree."""
    return OBS.tracer.render_tree()


def reset() -> None:
    """Clear all collected metrics and finished spans (keeps the switch)."""
    OBS.registry.reset()
    OBS.tracer.reset()
