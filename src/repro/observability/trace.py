"""Nestable spans: wall time, CPU time and optional ``tracemalloc`` peaks.

A :class:`Span` measures one named region of the pipeline
(``index.knn``, ``clustering.em.fit``, ``ingest.segment`` ...) and nests
under whatever span is active on the current thread, so a full
``ingest -> build -> knn`` run produces one tree per top-level
operation.  Two export forms:

- :meth:`Tracer.to_jsonl` — one JSON object per span (flat, with
  ``span_id``/``parent_id`` links) so traces stream to files and grep
  cleanly;
- :meth:`Tracer.render_tree` — an indented human-readable tree with
  wall/CPU milliseconds per span.

The span stack is thread-local: concurrent threads each build their own
trees, while :class:`~repro.parallel.DistanceExecutor` fan-out — which
dispatches futures from the calling thread — nests its spans under the
caller's active span.  Finished *root* spans accumulate on the tracer
(bounded by ``max_roots``, oldest dropped first).
"""

from __future__ import annotations

import json
import threading
import time
import tracemalloc

#: Hard bound on retained root spans (oldest evicted beyond it).
DEFAULT_MAX_ROOTS = 4096


class Span:
    """One timed region.  Use via :meth:`Tracer.span`::

        with tracer.span("index.knn", k=5) as span:
            ...
            span.set(hits=len(best))

    Recorded fields: ``wall_s`` (perf-counter), ``cpu_s``
    (process time), ``started`` (epoch seconds) and — when memory
    profiling is on — ``mem_kb`` (net allocation delta) and
    ``mem_peak_kb`` (the process-wide traced peak at span end).
    """

    __slots__ = ("name", "attrs", "children", "started", "wall_s", "cpu_s",
                 "mem_kb", "mem_peak_kb", "error", "_tracer", "_t0", "_cpu0",
                 "_mem0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.started = time.time()
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.mem_kb: float | None = None
        self.mem_peak_kb: float | None = None
        self.error: str | None = None
        self._tracer = tracer

    def set(self, **attrs) -> "Span":
        """Attach/overwrite attributes mid-span (e.g. result sizes)."""
        self.attrs.update(attrs)
        return self

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self._mem0 = (tracemalloc.get_traced_memory()[0]
                      if self._tracer.trace_memory and tracemalloc.is_tracing()
                      else None)
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s = time.perf_counter() - self._t0
        self.cpu_s = time.process_time() - self._cpu0
        if self._mem0 is not None and tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            self.mem_kb = (current - self._mem0) / 1024.0
            self.mem_peak_kb = peak / 1024.0
        if exc_type is not None:
            self.error = exc_type.__name__
        self._tracer._pop(self)

    # -- export ---------------------------------------------------------------

    def as_dict(self) -> dict:
        out = {
            "name": self.name,
            "started": self.started,
            "wall_ms": round(self.wall_s * 1e3, 3),
            "cpu_ms": round(self.cpu_s * 1e3, 3),
        }
        if self.attrs:
            out["attrs"] = self.attrs
        if self.mem_kb is not None:
            out["mem_kb"] = round(self.mem_kb, 1)
            out["mem_peak_kb"] = round(self.mem_peak_kb, 1)
        if self.error is not None:
            out["error"] = self.error
        return out

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, wall={self.wall_s * 1e3:.1f}ms, "
                f"children={len(self.children)})")


class Tracer:
    """Collects span trees per thread; exports JSONL and text trees."""

    def __init__(self, max_roots: int = DEFAULT_MAX_ROOTS,
                 trace_memory: bool = False):
        self.max_roots = max_roots
        self.trace_memory = trace_memory
        self.roots: list[Span] = []
        self._local = threading.local()

    # -- span lifecycle -------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """A new span nesting under the thread's active span (if any)."""
        return Span(self, name, attrs)

    def current(self) -> Span | None:
        """The innermost active span on this thread (``None`` outside)."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        if not stack:
            self.roots.append(span)
            if len(self.roots) > self.max_roots:
                del self.roots[: len(self.roots) - self.max_roots]

    def reset(self) -> None:
        """Drop finished roots (active spans keep recording)."""
        self.roots.clear()

    # -- export ---------------------------------------------------------------

    def _flat(self):
        """DFS over all finished trees as ``(span, span_id, parent_id)``."""
        next_id = 0
        for root in self.roots:
            stack = [(root, None)]
            while stack:
                span, parent_id = stack.pop()
                span_id = next_id
                next_id += 1
                yield span, span_id, parent_id
                for child in reversed(span.children):
                    stack.append((child, span_id))

    def to_jsonl(self) -> str:
        """One JSON object per finished span (parents before children)."""
        lines = []
        for span, span_id, parent_id in self._flat():
            record = {"span_id": span_id, "parent_id": parent_id}
            record.update(span.as_dict())
            lines.append(json.dumps(record, default=str))
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

    def span_names(self) -> set[str]:
        """All span names in the finished trees (handy for assertions)."""
        return {span.name for span, _, _ in self._flat()}

    def render_tree(self) -> str:
        """Indented text rendering of every finished span tree."""
        lines: list[str] = []

        def visit(span: Span, depth: int) -> None:
            attrs = ""
            if span.attrs:
                inner = ", ".join(f"{k}={v}" for k, v in span.attrs.items())
                attrs = f"  [{inner}]"
            mem = ""
            if span.mem_peak_kb is not None:
                mem = f"  peak={span.mem_peak_kb:.0f}KB"
            lines.append(
                f"{'  ' * depth}{span.name}  "
                f"wall={span.wall_s * 1e3:.1f}ms cpu={span.cpu_s * 1e3:.1f}ms"
                f"{mem}{attrs}"
            )
            for child in span.children:
                visit(child, depth + 1)

        for root in self.roots:
            visit(root, 0)
        return "\n".join(lines)
