"""Process-global metrics: counters, gauges and fixed-bucket histograms.

The registry is the single sink for every quantitative signal the
pipeline emits — distance pairs computed, cache hits, leaf scans, EM
iterations, quarantined segments — so operators (and benchmarks) read
one surface instead of poking private attributes of the cache, the
executor or the index.  Two export formats are supported:

- :meth:`MetricsRegistry.as_dict` — flat ``{name: value}`` JSON-able
  snapshot (histograms expand into ``name.count`` / ``name.sum`` /
  ``name.bucket_le_X`` entries);
- :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (``.`` in metric names becomes ``_``).

Instruments are created on first use (``registry.counter("x").inc()``)
and are deliberately dependency-free and cheap: a counter increment is a
dict lookup, a lock acquire and an integer add.  The registry is
thread-safe — the serving layer updates it from worker threads, so
instrument creation is guarded by a registry lock and each instrument
serialises its own updates (``+=`` on an attribute is a read-modify-write
that the GIL does **not** make atomic).  Exports snapshot the instrument
table before iterating, so they never race a concurrent registration.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import InvalidParameterError

#: Default histogram buckets (seconds-flavored, but unit-agnostic).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


@dataclass
class CacheStats:
    """Counters of :class:`repro.distance.cache.DistanceCache`.

    ``hits``/``misses`` count cacheable lookups; ``bypasses`` counts
    evaluations routed around the cache (no ``cache_token``);
    ``evictions`` counts entries dropped by the LRU bound.

    .. note:: This class moved here from ``repro.distance.cache`` when
       the observability layer became the blessed home for telemetry
       types; the old import path still works but warns.
    """

    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    evictions: int = 0

    def hit_rate(self) -> float:
        """Fraction of cacheable lookups served from memory."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate(),
        }


class Counter:
    """Monotonically increasing integer metric (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise InvalidParameterError(
                f"counter {self.name!r} cannot decrease (inc {n})"
            )
        with self._lock:
            self.value += n


class Gauge:
    """Last-written-value metric (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self.value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self.value -= n


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches the
    rest.  ``observe`` is O(len(buckets)) with no allocation.
    """

    __slots__ = ("name", "buckets", "counts", "inf_count", "total", "count",
                 "_lock")

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise InvalidParameterError(
                f"histogram {name!r} buckets must be ascending and non-empty"
            )
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * len(self.buckets)
        self.inf_count = 0
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.total += value
            self.count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    return
            self.inf_count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        out = []
        with self._lock:
            running = 0
            for bound, c in zip(self.buckets, self.counts):
                running += c
                out.append((bound, running))
            out.append((float("inf"), running + self.inf_count))
        return out


class MetricsRegistry:
    """Name-addressed store of counters, gauges and histograms.

    Instruments are created lazily and are unique per name; asking for an
    existing name with a different instrument kind raises.
    """

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def _get(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = factory()
                    self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise InvalidParameterError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def value(self, name: str, default=None):
        """Current scalar value of a counter/gauge (``default`` if absent)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.count
        return metric.value

    def reset(self) -> None:
        """Drop every registered instrument."""
        with self._lock:
            self._metrics.clear()

    def _snapshot(self) -> dict[str, Counter | Gauge | Histogram]:
        """Stable copy of the instrument table for iteration."""
        with self._lock:
            return dict(self._metrics)

    # -- export ---------------------------------------------------------------

    def as_dict(self) -> dict[str, int | float]:
        """Flat JSON-able snapshot, histogram buckets expanded."""
        out: dict[str, int | float] = {}
        metrics = self._snapshot()
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Histogram):
                out[f"{name}.count"] = metric.count
                out[f"{name}.sum"] = metric.total
                for bound, cum in metric.cumulative():
                    label = "inf" if bound == float("inf") else repr(bound)
                    out[f"{name}.bucket_le_{label}"] = cum
            else:
                out[name] = metric.value
        return out

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition format (one ``# TYPE`` per metric)."""
        lines: list[str] = []
        metrics = self._snapshot()
        for name in sorted(metrics):
            metric = metrics[name]
            flat = _prom_name(prefix, name)
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {flat} counter")
                lines.append(f"{flat} {_prom_value(metric.value)}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {flat} gauge")
                lines.append(f"{flat} {_prom_value(metric.value)}")
            else:
                lines.append(f"# TYPE {flat} histogram")
                for bound, cum in metric.cumulative():
                    le = "+Inf" if bound == float("inf") else _prom_value(bound)
                    lines.append(f'{flat}_bucket{{le="{le}"}} {cum}')
                lines.append(f"{flat}_sum {_prom_value(metric.total)}")
                lines.append(f"{flat}_count {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(prefix: str, name: str) -> str:
    """``cache.hit-rate`` -> ``repro_cache_hit_rate``."""
    flat = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"{prefix}_{flat}" if prefix else flat


def _prom_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)
