"""Graph union and merged isomorphisms — Theorem 1.

Theorem 1 states that two pairs of subgraph-isomorphic graphs can be
merged into one pair: if ``G1`` embeds in ``G1''`` via ``f1`` and ``G2``
embeds in ``G2''`` via ``f2``, then ``G1 ∪ G2`` embeds in
``G1'' ∪ G2''`` via ``f1 ∘ f2``.  This is the formal justification for
ORG merging (Section 2.3.2): per-part correspondences across frames can
be combined into a whole-object correspondence.

These helpers make the construction explicit: a disjoint-aware union of
attributed RAGs and the combination of two node mappings, validated as an
embedding of the union.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import GraphStructureError
from repro.graph.attributes import AttributeTolerance
from repro.graph.rag import RegionAdjacencyGraph

NodeMapping = Mapping[int, int]


def union_graphs(a: RegionAdjacencyGraph,
                 b: RegionAdjacencyGraph) -> RegionAdjacencyGraph:
    """Union of two attributed graphs over a shared node-id space.

    Nodes present in both must carry identical attributes (they are the
    same region); edges are united.  Use disjoint id ranges for a true
    disjoint union.
    """
    out = RegionAdjacencyGraph(a.frame_index)
    for graph in (a, b):
        for node in graph.nodes():
            attrs = graph.node_attrs(node)
            if node in out and out.node_attrs(node) != attrs:
                raise GraphStructureError(
                    f"node {node} present in both graphs with different "
                    "attributes; use disjoint id ranges"
                )
            out.add_node(node, attrs)
    for graph in (a, b):
        for u, v in graph.edges():
            if not out.graph.has_edge(u, v):
                out.add_edge(u, v, graph.edge_attrs(u, v))
    return out


def combine_mappings(f1: NodeMapping, f2: NodeMapping) -> dict[int, int]:
    """Combine two embeddings into one (the ``f1 ∘ f2`` of Theorem 1).

    The mappings must agree on shared source nodes and stay injective on
    the union, otherwise the combination is not an embedding.
    """
    combined = dict(f1)
    for src, dst in f2.items():
        if src in combined and combined[src] != dst:
            raise GraphStructureError(
                f"mappings disagree on node {src}: {combined[src]} vs {dst}"
            )
        combined[src] = dst
    targets = list(combined.values())
    if len(set(targets)) != len(targets):
        raise GraphStructureError("combined mapping is not injective")
    return combined


def is_embedding(pattern: RegionAdjacencyGraph,
                 target: RegionAdjacencyGraph,
                 mapping: NodeMapping,
                 tolerance: AttributeTolerance | None = None) -> bool:
    """Validate that ``mapping`` embeds ``pattern`` into ``target``.

    Checks injectivity, node compatibility and edge preservation — the
    conditions of Definition 5 for a given (rather than searched) mapping.
    """
    tolerance = tolerance or AttributeTolerance()
    targets = list(mapping.values())
    if len(set(targets)) != len(targets):
        return False
    for node in pattern.nodes():
        if node not in mapping or mapping[node] not in target:
            return False
        if not tolerance.nodes_compatible(
            pattern.node_attrs(node), target.node_attrs(mapping[node])
        ):
            return False
    for u, v in pattern.edges():
        tu, tv = mapping[u], mapping[v]
        if not target.graph.has_edge(tu, tv):
            return False
        if not tolerance.edges_compatible(
            pattern.edge_attrs(u, v), target.edge_attrs(tu, tv)
        ):
            return False
    return True


def merge_isomorphic_pairs(g1: RegionAdjacencyGraph, f1: NodeMapping,
                           g2: RegionAdjacencyGraph, f2: NodeMapping,
                           target1: RegionAdjacencyGraph,
                           target2: RegionAdjacencyGraph,
                           tolerance: AttributeTolerance | None = None
                           ) -> tuple[RegionAdjacencyGraph,
                                      RegionAdjacencyGraph,
                                      dict[int, int]]:
    """The full Theorem 1 construction.

    Given ``f1: g1 -> target1`` and ``f2: g2 -> target2``, build the
    unions ``g1 ∪ g2`` and ``target1 ∪ target2`` and the combined mapping,
    verifying that it is an embedding of the union.
    """
    union_pattern = union_graphs(g1, g2)
    union_target = union_graphs(target1, target2)
    combined = combine_mappings(f1, f2)
    if not is_embedding(union_pattern, union_target, combined, tolerance):
        raise GraphStructureError(
            "combined mapping is not an embedding of the union; the "
            "inputs violate Theorem 1's premises"
        )
    return union_pattern, union_target, combined
