"""Graph-based tracking — Algorithm 1.

Temporal edges of an STRG are found by matching each region's neighborhood
graph (Definition 7) against the next frame: an isomorphic neighborhood
graph wins outright; otherwise the candidate with the highest SimGraph
similarity (Equation 1) above the threshold ``T_sim`` is linked.

A centroid gate (``max_candidate_distance``) prunes physically impossible
candidates, which keeps the per-frame cost near-linear on real videos
without changing the matches Algorithm 1 would produce (objects do not
teleport between consecutive frames).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import InvalidParameterError
from repro.graph.attributes import AttributeTolerance
from repro.graph.common_subgraph import sim_graph
from repro.graph.isomorphism import is_isomorphic
from repro.graph.neighborhood import neighborhood_graph
from repro.graph.rag import RegionAdjacencyGraph
from repro.graph.strg import SpatioTemporalRegionGraph


@dataclass
class TrackerConfig:
    """Tuning knobs of the graph-based tracker.

    ``sim_threshold`` is the paper's ``T_sim``; ``tolerance`` controls node
    and edge compatibility during matching; ``max_candidate_distance`` gates
    candidate regions by centroid displacement (pixels/frame).
    """

    sim_threshold: float = 0.5
    tolerance: AttributeTolerance = field(default_factory=AttributeTolerance)
    max_candidate_distance: float = 60.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.sim_threshold <= 1.0:
            raise InvalidParameterError(
                f"sim_threshold must be in [0, 1], got {self.sim_threshold}"
            )
        if self.max_candidate_distance <= 0:
            raise InvalidParameterError(
                "max_candidate_distance must be positive, "
                f"got {self.max_candidate_distance}"
            )


class GraphTracker:
    """Builds STRG temporal edges between consecutive RAGs (Algorithm 1)."""

    def __init__(self, config: TrackerConfig | None = None):
        self.config = config or TrackerConfig()

    def _candidates(self, rag_next: RegionAdjacencyGraph,
                    attrs) -> list[int]:
        """Next-frame regions within the centroid gate of ``attrs``."""
        gate = self.config.max_candidate_distance
        out = []
        for v in rag_next.nodes():
            if attrs.centroid_distance(rag_next.node_attrs(v)) <= gate:
                out.append(v)
        return out

    def track_pair(self, rag_m: RegionAdjacencyGraph,
                   rag_next: RegionAdjacencyGraph
                   ) -> list[tuple[int, int]]:
        """Temporal correspondences between two consecutive RAGs.

        Returns ``(region_in_m, region_in_next)`` pairs — the edge set
        ``E_T`` of Algorithm 1 for this frame pair.
        """
        tol = self.config.tolerance
        edges: list[tuple[int, int]] = []
        neighborhoods_next: dict[int, RegionAdjacencyGraph] = {}
        for v in rag_m.nodes():
            g = neighborhood_graph(rag_m, v)
            attrs_v = rag_m.node_attrs(v)
            max_sim = 0.0
            max_node: int | None = None
            matched = False
            for v_next in self._candidates(rag_next, attrs_v):
                if v_next not in neighborhoods_next:
                    neighborhoods_next[v_next] = neighborhood_graph(rag_next, v_next)
                g_next = neighborhoods_next[v_next]
                if not tol.nodes_compatible(attrs_v, rag_next.node_attrs(v_next)):
                    continue
                if is_isomorphic(g, g_next, tol):
                    edges.append((v, v_next))
                    matched = True
                    break
                sim = sim_graph(g, g_next, tol)
                if sim > max_sim:
                    max_sim = sim
                    max_node = v_next
            if not matched and max_node is not None and max_sim > self.config.sim_threshold:
                edges.append((v, max_node))
        return edges

    def track_stream(self, rags: Iterable[RegionAdjacencyGraph]
                     ) -> SpatioTemporalRegionGraph:
        """Assemble an STRG from an ordered stream of RAGs.

        Each RAG is appended and tracked against its predecessor as soon
        as it arrives, so a lazy producer (the frame-parallel
        segmentation fan-out) overlaps with tracking.  Tracking frame
        pair ``(m, m+1)`` only reads those two RAGs, so the result is
        identical to appending everything first and tracking after —
        :meth:`build_strg` delegates here.
        """
        strg = SpatioTemporalRegionGraph()
        m = -1
        for rag in rags:
            strg.append_rag(rag)
            m += 1
            if m > 0:
                for src, dst in self.track_pair(strg.rag(m - 1), strg.rag(m)):
                    strg.add_temporal_edge((m - 1, src), (m, dst))
        return strg

    def build_strg(self, rags: Sequence[RegionAdjacencyGraph]
                   ) -> SpatioTemporalRegionGraph:
        """Assemble a full STRG: append each RAG and track every
        consecutive pair, materializing the temporal edges."""
        return self.track_stream(rags)
