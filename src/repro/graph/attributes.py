"""Attribute models for RAG / STRG nodes and edges.

Definition 1 attaches *size*, *color* and *location (centroid)* to nodes and
*spatial distance* and *orientation* to spatial edges; Definition 2 adds
*velocity* and *moving direction* to temporal edges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class NodeAttributes:
    """Attributes of a segmented region (a RAG node).

    Attributes
    ----------
    size:
        Number of pixels in the region.
    color:
        Mean color of the region, an RGB (or LUV) triple in ``[0, 255]``.
    centroid:
        ``(x, y)`` centroid of the region in pixel coordinates.
    """

    size: int
    color: tuple[float, float, float]
    centroid: tuple[float, float]

    def __post_init__(self) -> None:
        if self.size < 1:
            raise InvalidParameterError(f"region size must be >= 1, got {self.size}")

    def as_vector(self) -> np.ndarray:
        """Flat feature vector ``[size, r, g, b, cx, cy]`` (float64)."""
        return np.array(
            [self.size, *self.color, *self.centroid], dtype=np.float64
        )

    def color_distance(self, other: "NodeAttributes") -> float:
        """Euclidean distance between mean colors."""
        a = np.asarray(self.color, dtype=np.float64)
        b = np.asarray(other.color, dtype=np.float64)
        return float(np.linalg.norm(a - b))

    def centroid_distance(self, other: "NodeAttributes") -> float:
        """Euclidean distance between centroids."""
        dx = self.centroid[0] - other.centroid[0]
        dy = self.centroid[1] - other.centroid[1]
        return math.hypot(dx, dy)

    def size_ratio(self, other: "NodeAttributes") -> float:
        """Smaller-over-larger size ratio in ``(0, 1]``."""
        lo, hi = sorted((self.size, other.size))
        return lo / hi


@dataclass(frozen=True)
class SpatialEdgeAttributes:
    """Attributes of a spatial edge between two adjacent regions.

    ``distance`` is the Euclidean centroid distance and ``orientation`` the
    angle (radians, in ``(-pi, pi]``) of the vector between the centroids.
    """

    distance: float
    orientation: float

    @classmethod
    def between(cls, a: NodeAttributes, b: NodeAttributes) -> "SpatialEdgeAttributes":
        """Spatial edge attributes between two node attribute sets."""
        dx = b.centroid[0] - a.centroid[0]
        dy = b.centroid[1] - a.centroid[1]
        return cls(distance=math.hypot(dx, dy), orientation=math.atan2(dy, dx))


@dataclass(frozen=True)
class TemporalEdgeAttributes:
    """Attributes of a temporal edge between corresponding regions in two
    consecutive frames.

    ``velocity`` is the centroid displacement magnitude (pixels/frame) and
    ``direction`` the displacement angle (radians).
    """

    velocity: float
    direction: float

    @classmethod
    def between(cls, prev: NodeAttributes, cur: NodeAttributes) -> "TemporalEdgeAttributes":
        """Temporal edge attributes from the previous to the current node."""
        dx = cur.centroid[0] - prev.centroid[0]
        dy = cur.centroid[1] - prev.centroid[1]
        return cls(velocity=math.hypot(dx, dy), direction=math.atan2(dy, dx))


def angle_difference(a: float, b: float) -> float:
    """Absolute angular difference in ``[0, pi]``."""
    diff = (a - b) % (2.0 * math.pi)
    if diff > math.pi:
        diff = 2.0 * math.pi - diff
    return diff


@dataclass(frozen=True)
class AttributeTolerance:
    """Tolerances under which two attributed nodes/edges are *compatible*.

    Graph matching on real segmentations can never demand exact attribute
    equality; every matcher in this package takes compatibility from this
    object.  The defaults are permissive enough for the synthetic videos in
    :mod:`repro.datasets.real` while still separating distinct objects.
    """

    color: float = 40.0
    size_ratio: float = 0.5
    centroid: float = float("inf")
    spatial_distance: float = float("inf")
    orientation: float = math.pi

    def nodes_compatible(self, a: NodeAttributes, b: NodeAttributes) -> bool:
        """Whether two nodes may correspond under this tolerance."""
        if a.color_distance(b) > self.color:
            return False
        if a.size_ratio(b) < self.size_ratio:
            return False
        if a.centroid_distance(b) > self.centroid:
            return False
        return True

    def edges_compatible(self, a: SpatialEdgeAttributes,
                         b: SpatialEdgeAttributes) -> bool:
        """Whether two spatial edges may correspond under this tolerance."""
        if abs(a.distance - b.distance) > self.spatial_distance:
            return False
        if angle_difference(a.orientation, b.orientation) > self.orientation:
            return False
        return True


#: Tolerance matching the exact-equality semantics of Definition 4 — only
#: meaningful for synthetic graphs with controlled attributes.
EXACT = AttributeTolerance(color=0.0, size_ratio=1.0, centroid=0.0,
                           spatial_distance=0.0, orientation=0.0)
