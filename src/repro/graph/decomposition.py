"""STRG decomposition into ORGs, OGs and a Background Graph — Section 2.3.

The decomposition walks temporal-edge chains of an STRG to extract Object
Region Graphs, merges ORGs that move together into Object Graphs (the
velocity/direction criterion of Section 2.3.2), and collapses everything
else into a single Background Graph by overlapping the remaining per-frame
regions along their temporal edges (Section 2.3.3) — the redundancy
elimination that makes the STRG-Index small (Table 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.attributes import (
    AttributeTolerance,
    NodeAttributes,
    angle_difference,
)
from repro.graph.common_subgraph import sim_graph
from repro.graph.object_graph import NodeKey, ObjectGraph, ObjectRegionGraph
from repro.graph.rag import RegionAdjacencyGraph
from repro.graph.strg import SpatioTemporalRegionGraph


@dataclass
class DecompositionConfig:
    """Thresholds controlling ORG extraction and OG merging.

    ``min_org_length`` drops spurious one/two-frame tracks;
    ``min_velocity`` separates moving foreground from static background;
    ``velocity_tolerance`` / ``direction_tolerance`` / ``gap_tolerance``
    decide when two ORGs "have the same moving direction and the same
    velocity" (Section 2.3.2) and are close enough to be one object.
    """

    min_org_length: int = 3
    min_velocity: float = 0.5
    velocity_tolerance: float = 2.0
    direction_tolerance: float = math.pi / 4.0
    gap_tolerance: float = 40.0

    def __post_init__(self) -> None:
        if self.min_org_length < 1:
            raise InvalidParameterError(
                f"min_org_length must be >= 1, got {self.min_org_length}"
            )
        if self.min_velocity < 0:
            raise InvalidParameterError(
                f"min_velocity must be >= 0, got {self.min_velocity}"
            )


class BackgroundGraph:
    """The deduplicated background of a video segment (Section 2.3.3).

    One representative RAG stands in for the background of every frame;
    ``frame_count`` records how many frames it replaces, which is exactly
    the ``N x size(BG)`` redundancy Equation (9) charges to the raw STRG.
    """

    def __init__(self, rag: RegionAdjacencyGraph, frame_count: int):
        self.rag = rag
        self.frame_count = frame_count

    def __len__(self) -> int:
        return len(self.rag)

    def size_bytes(self) -> int:
        """Footprint of the single stored background RAG."""
        return self.rag.size_bytes()

    #: Above this association-graph size the exact max-clique SimGraph is
    #: replaced by optimal attribute matching (the clique search is
    #: exponential; backgrounds routinely have dozens of regions).
    MAX_EXACT_ASSOCIATION = 120

    def similarity(self, other: "BackgroundGraph",
                   tolerance: AttributeTolerance | None = None) -> float:
        """Similarity between two backgrounds, used by the root level of
        the STRG-Index at query time (Algorithm 3, step 2).

        Small pairs use the exact SimGraph (Eq. 1, max common subgraph);
        large pairs fall back to the optimal one-to-one node-attribute
        matching (Hungarian), which drops the edge-preservation constraint
        but keeps the same ``matched / min(|A|, |B|)`` normalization.
        """
        if len(self) == 0 or len(other) == 0:
            return 1.0 if len(self) == len(other) else 0.0
        if len(self) * len(other) <= self.MAX_EXACT_ASSOCIATION:
            return sim_graph(self.rag, other.rag, tolerance)
        return self._matching_similarity(other, tolerance)

    def _matching_similarity(self, other: "BackgroundGraph",
                             tolerance: AttributeTolerance | None) -> float:
        """Optimal node-compatibility matching similarity in [0, 1]."""
        from scipy.optimize import linear_sum_assignment

        tolerance = tolerance or AttributeTolerance()
        ours = [self.rag.node_attrs(n) for n in self.rag.nodes()]
        theirs = [other.rag.node_attrs(n) for n in other.rag.nodes()]
        compatible = np.zeros((len(ours), len(theirs)), dtype=np.float64)
        for i, a in enumerate(ours):
            for j, b in enumerate(theirs):
                if tolerance.nodes_compatible(a, b):
                    compatible[i, j] = 1.0
        rows, cols = linear_sum_assignment(-compatible)
        matched = float(compatible[rows, cols].sum())
        return matched / min(len(ours), len(theirs))

    def __repr__(self) -> str:
        return f"BackgroundGraph(regions={len(self)}, frames={self.frame_count})"


@dataclass
class STRGDecomposition:
    """Result of :func:`decompose`: OGs, the BG, and the raw ORGs."""

    object_graphs: list[ObjectGraph]
    background: BackgroundGraph
    orgs: list[ObjectRegionGraph]
    background_orgs: list[ObjectRegionGraph] = field(default_factory=list)


def extract_object_region_graphs(
        strg: SpatioTemporalRegionGraph,
        config: DecompositionConfig | None = None
) -> tuple[list[ObjectRegionGraph], list[ObjectRegionGraph]]:
    """Extract temporal chains and split them into foreground/background.

    Walks maximal temporal-edge chains (each node consumed once; at a
    convergence point the later chain terminates).  Chains at least
    ``min_org_length`` long with mean velocity >= ``min_velocity`` are
    foreground ORGs; the rest are background ORGs.
    """
    config = config or DecompositionConfig()
    visited: set[NodeKey] = set()
    foreground: list[ObjectRegionGraph] = []
    background: list[ObjectRegionGraph] = []
    start_nodes = [
        key for key in strg.nodes() if not strg.predecessors(key)
    ]
    for start in start_nodes:
        if start in visited:
            continue
        chain: list[NodeKey] = []
        node: NodeKey | None = start
        while node is not None and node not in visited:
            visited.add(node)
            chain.append(node)
            successors = [s for s in strg.successors(node) if s not in visited]
            node = successors[0] if successors else None
        org = ObjectRegionGraph(
            node_keys=chain,
            attrs=[strg.node_attrs(key) for key in chain],
        )
        is_moving = (
            len(org) >= config.min_org_length
            and org.mean_velocity() >= config.min_velocity
        )
        if is_moving:
            foreground.append(org)
        else:
            background.append(org)
    return foreground, background


def merge_object_region_graphs(
        orgs: Sequence[ObjectRegionGraph],
        config: DecompositionConfig | None = None) -> list[ObjectGraph]:
    """Group co-moving ORGs into Object Graphs (Section 2.3.2).

    Two ORGs join the same group when they overlap in time, their mean
    velocities and directions agree within tolerance, and their centroids
    stay within ``gap_tolerance`` over the shared span — the practical
    reading of "same moving direction and the same velocity".  Groups are
    the connected components of this relation (union-find).
    """
    config = config or DecompositionConfig()
    n = len(orgs)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    stats = [(org.mean_velocity(), org.mean_direction()) for org in orgs]
    for i in range(n):
        for j in range(i + 1, n):
            if not orgs[i].overlaps(orgs[j]):
                continue
            vel_i, dir_i = stats[i]
            vel_j, dir_j = stats[j]
            if abs(vel_i - vel_j) > config.velocity_tolerance:
                continue
            if angle_difference(dir_i, dir_j) > config.direction_tolerance:
                continue
            if orgs[i].mean_centroid_gap(orgs[j]) > config.gap_tolerance:
                continue
            union(i, j)

    groups: dict[int, list[ObjectRegionGraph]] = {}
    for i, org in enumerate(orgs):
        groups.setdefault(find(i), []).append(org)
    return [ObjectGraph.from_orgs(members) for members in groups.values()]


def extract_background_graph(
        strg: SpatioTemporalRegionGraph,
        background_orgs: Sequence[ObjectRegionGraph]
) -> BackgroundGraph:
    """Collapse all background chains into one Background Graph.

    Each background chain contributes a single node with *median*
    attributes over its lifetime (overlapping along temporal edges, Section
    2.3.3); spatial edges are inherited from the frame where both endpoint
    chains are simultaneously alive.
    """
    rag = RegionAdjacencyGraph(frame_index=-1)
    key_to_bg_node: dict[NodeKey, int] = {}
    for bg_id, org in enumerate(background_orgs):
        sizes = [a.size for a in org.attrs]
        colors = np.array([a.color for a in org.attrs], dtype=np.float64)
        centroids = np.array([a.centroid for a in org.attrs], dtype=np.float64)
        attrs = NodeAttributes(
            size=int(np.median(sizes)),
            color=tuple(np.median(colors, axis=0)),
            centroid=tuple(np.median(centroids, axis=0)),
        )
        rag.add_node(bg_id, attrs)
        for key in org.node_keys:
            key_to_bg_node[key] = bg_id
    # Inherit spatial adjacency from the original per-frame RAGs.
    seen: set[tuple[int, int]] = set()
    for frame_rag in strg.rags:
        frame = frame_rag.frame_index
        for u, v in frame_rag.edges():
            bu = key_to_bg_node.get((frame, u))
            bv = key_to_bg_node.get((frame, v))
            if bu is None or bv is None or bu == bv:
                continue
            pair = (min(bu, bv), max(bu, bv))
            if pair not in seen:
                seen.add(pair)
                rag.add_edge(bu, bv)
    return BackgroundGraph(rag, frame_count=strg.num_frames)


def decompose(strg: SpatioTemporalRegionGraph,
              config: DecompositionConfig | None = None) -> STRGDecomposition:
    """Full STRG decomposition: foreground OGs + deduplicated BG."""
    config = config or DecompositionConfig()
    foreground, background_orgs = extract_object_region_graphs(strg, config)
    object_graphs = merge_object_region_graphs(foreground, config)
    background = extract_background_graph(strg, background_orgs)
    return STRGDecomposition(
        object_graphs=object_graphs,
        background=background,
        orgs=list(foreground),
        background_orgs=list(background_orgs),
    )
