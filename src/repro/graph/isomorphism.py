"""(Sub)graph isomorphism on attributed RAGs — Definitions 3, 4 and 5.

A VF2-style backtracking matcher specialized for the small neighborhood
graphs used by tracking (Algorithm 1).  Node and edge compatibility is
delegated to :class:`~repro.graph.attributes.AttributeTolerance`, so the
same matcher serves both the exact semantics of Definition 4 (via the
``EXACT`` tolerance) and the tolerant matching real segmentations require.
"""

from __future__ import annotations

from typing import Iterator

from repro.graph.attributes import AttributeTolerance
from repro.graph.rag import RegionAdjacencyGraph

#: A node mapping from the pattern graph to the target graph.
Mapping_ = dict[int, int]


def _candidate_order(pattern: RegionAdjacencyGraph) -> list[int]:
    """Match higher-degree pattern nodes first to prune earlier."""
    return sorted(pattern.nodes(), key=lambda n: -pattern.degree(n))


def _extend(pattern: RegionAdjacencyGraph, target: RegionAdjacencyGraph,
            order: list[int], mapping: Mapping_, used: set[int],
            tolerance: AttributeTolerance, induced: bool) -> Iterator[Mapping_]:
    """Depth-first extension of a partial node mapping."""
    if len(mapping) == len(order):
        yield dict(mapping)
        return
    p_node = order[len(mapping)]
    p_attrs = pattern.node_attrs(p_node)
    for t_node in target.nodes():
        if t_node in used:
            continue
        if not tolerance.nodes_compatible(p_attrs, target.node_attrs(t_node)):
            continue
        consistent = True
        for p_prev, t_prev in mapping.items():
            p_adj = pattern.graph.has_edge(p_node, p_prev)
            t_adj = target.graph.has_edge(t_node, t_prev)
            if p_adj:
                if not t_adj:
                    consistent = False
                    break
                if not tolerance.edges_compatible(
                    pattern.edge_attrs(p_node, p_prev),
                    target.edge_attrs(t_node, t_prev),
                ):
                    consistent = False
                    break
            elif induced and t_adj:
                consistent = False
                break
        if not consistent:
            continue
        mapping[p_node] = t_node
        used.add(t_node)
        yield from _extend(pattern, target, order, mapping, used,
                           tolerance, induced)
        del mapping[p_node]
        used.remove(t_node)


def find_subgraph_isomorphism(
        pattern: RegionAdjacencyGraph, target: RegionAdjacencyGraph,
        tolerance: AttributeTolerance | None = None,
        induced: bool = False) -> Mapping_ | None:
    """First injective mapping embedding ``pattern`` into ``target``.

    Implements Definition 5: an injective ``f: V_pattern -> V_target`` whose
    image induces a subgraph isomorphic to ``pattern``.  Returns ``None``
    when no embedding exists.  ``induced=True`` additionally forbids target
    edges between mapped nodes that have no pattern counterpart.
    """
    tolerance = tolerance or AttributeTolerance()
    if len(pattern) > len(target):
        return None
    order = _candidate_order(pattern)
    for mapping in _extend(pattern, target, order, {}, set(), tolerance, induced):
        return mapping
    return None


def find_isomorphism(a: RegionAdjacencyGraph, b: RegionAdjacencyGraph,
                     tolerance: AttributeTolerance | None = None) -> Mapping_ | None:
    """Bijective isomorphism between two graphs (Definition 4), or ``None``.

    Equal node and edge counts are required; the mapping must preserve
    adjacency in both directions (checked via induced matching).
    """
    if len(a) != len(b) or a.number_of_edges() != b.number_of_edges():
        return None
    return find_subgraph_isomorphism(a, b, tolerance, induced=True)


def is_isomorphic(a: RegionAdjacencyGraph, b: RegionAdjacencyGraph,
                  tolerance: AttributeTolerance | None = None) -> bool:
    """Whether two attributed graphs are isomorphic under the tolerance."""
    return find_isomorphism(a, b, tolerance) is not None
