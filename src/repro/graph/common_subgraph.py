"""Most common subgraph and the SimGraph similarity — Definition 6, Eq. (1).

The maximum common subgraph of two attributed graphs is computed via the
classical *association graph* reduction (Levi 1972), which the paper cites
as the basis of its maximal-clique approach: build a compatibility graph
whose vertices are attribute-compatible node pairs and whose edges connect
pairs that preserve (non-)adjacency, then find a maximum clique with
Bron-Kerbosch (with pivoting).
"""

from __future__ import annotations

from repro.graph.attributes import AttributeTolerance
from repro.graph.rag import RegionAdjacencyGraph

#: A common-subgraph correspondence: list of (node_in_a, node_in_b) pairs.
Correspondence = list[tuple[int, int]]


def _association_graph(a: RegionAdjacencyGraph, b: RegionAdjacencyGraph,
                       tolerance: AttributeTolerance
                       ) -> tuple[list[tuple[int, int]], list[set[int]]]:
    """Vertices and adjacency sets of the association graph.

    Vertex ``k`` is the pair ``pairs[k] = (u, v)`` with ``u`` in ``a`` and
    ``v`` in ``b`` attribute-compatible.  Two vertices ``(u1, v1)`` and
    ``(u2, v2)`` are adjacent when ``u1 != u2``, ``v1 != v2`` and the edge
    relation is preserved: either both ``(u1, u2)`` and ``(v1, v2)`` are
    edges with compatible attributes, or neither is an edge.
    """
    pairs: list[tuple[int, int]] = []
    for u in a.nodes():
        au = a.node_attrs(u)
        for v in b.nodes():
            if tolerance.nodes_compatible(au, b.node_attrs(v)):
                pairs.append((u, v))
    n = len(pairs)
    adjacency: list[set[int]] = [set() for _ in range(n)]
    for i in range(n):
        u1, v1 = pairs[i]
        for j in range(i + 1, n):
            u2, v2 = pairs[j]
            if u1 == u2 or v1 == v2:
                continue
            a_edge = a.graph.has_edge(u1, u2)
            b_edge = b.graph.has_edge(v1, v2)
            if a_edge != b_edge:
                continue
            if a_edge and not tolerance.edges_compatible(
                a.edge_attrs(u1, u2), b.edge_attrs(v1, v2)
            ):
                continue
            adjacency[i].add(j)
            adjacency[j].add(i)
    return pairs, adjacency


def _max_clique(adjacency: list[set[int]]) -> set[int]:
    """Maximum clique by Bron-Kerbosch with pivoting.

    Suitable for the small association graphs arising from neighborhood
    graphs and background graphs (tens of vertices).
    """
    best: set[int] = set()

    def expand(r: set[int], p: set[int], x: set[int]) -> None:
        nonlocal best
        if not p and not x:
            if len(r) > len(best):
                best = set(r)
            return
        if len(r) + len(p) <= len(best):
            return  # cannot beat the incumbent
        pivot = max(p | x, key=lambda v: len(adjacency[v] & p))
        for v in list(p - adjacency[pivot]):
            expand(r | {v}, p & adjacency[v], x & adjacency[v])
            p.remove(v)
            x.add(v)

    expand(set(), set(range(len(adjacency))), set())
    return best


def most_common_subgraph(a: RegionAdjacencyGraph, b: RegionAdjacencyGraph,
                         tolerance: AttributeTolerance | None = None
                         ) -> Correspondence:
    """Node correspondence of the most common subgraph ``G_C`` (Def. 6).

    Returns the largest list of ``(node_in_a, node_in_b)`` pairs such that
    the induced subgraphs are isomorphic under the tolerance.  An empty
    list means no compatible node pair exists.
    """
    tolerance = tolerance or AttributeTolerance()
    pairs, adjacency = _association_graph(a, b, tolerance)
    if not pairs:
        return []
    clique = _max_clique(adjacency)
    return sorted(pairs[k] for k in clique)


def sim_graph(a: RegionAdjacencyGraph, b: RegionAdjacencyGraph,
              tolerance: AttributeTolerance | None = None) -> float:
    """SimGraph similarity — Equation (1).

    ``|G_C| / min(|G_N(v)|, |G_N(v')|)`` in ``[0, 1]``; 1 means one graph's
    nodes embed entirely into the other.
    """
    common = most_common_subgraph(a, b, tolerance)
    return len(common) / min(len(a), len(b))
