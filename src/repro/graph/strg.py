"""Spatio-Temporal Region Graph (Definition 2).

An STRG ``Gst(S) = {V, E_S, E_T, nu, xi, tau}`` is the sequence of per-frame
RAGs of a video segment, augmented with *temporal edges* connecting
corresponding regions in consecutive frames.  STRG nodes are globally
addressed as ``(frame_index, region_id)`` pairs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import GraphStructureError
from repro.graph.attributes import NodeAttributes, TemporalEdgeAttributes
from repro.graph.rag import RegionAdjacencyGraph

#: Global address of an STRG node.
NodeKey = tuple[int, int]


class SpatioTemporalRegionGraph:
    """Temporally connected sequence of RAGs.

    Temporal edges are stored both forward (``successors``) and backward
    (``predecessors``) so that trajectory extraction can walk chains in
    either direction.
    """

    def __init__(self, rags: Sequence[RegionAdjacencyGraph] | None = None):
        self._rags: list[RegionAdjacencyGraph] = []
        self._forward: dict[NodeKey, list[NodeKey]] = {}
        self._backward: dict[NodeKey, list[NodeKey]] = {}
        self._temporal_attrs: dict[tuple[NodeKey, NodeKey], TemporalEdgeAttributes] = {}
        for rag in rags or []:
            self.append_rag(rag)

    # -- construction -----------------------------------------------------

    def append_rag(self, rag: RegionAdjacencyGraph) -> None:
        """Append the RAG of the next frame.

        The RAG's ``frame_index`` is normalized to its position in the
        segment so that temporal edges can be addressed consistently.
        """
        rag.frame_index = len(self._rags)
        self._rags.append(rag)

    def add_temporal_edge(self, src: NodeKey, dst: NodeKey,
                          attrs: TemporalEdgeAttributes | None = None) -> None:
        """Connect corresponding regions in consecutive frames.

        ``src`` and ``dst`` are ``(frame, region)`` keys with
        ``dst.frame == src.frame + 1``.  Attributes default to the
        centroid-derived velocity/direction of Definition 2.
        """
        sf, sr = src
        df, dr = dst
        if df != sf + 1:
            raise GraphStructureError(
                f"temporal edge must span consecutive frames, got {sf}->{df}"
            )
        if not (0 <= sf < len(self._rags)) or sr not in self._rags[sf]:
            raise GraphStructureError(f"source node {src} not in STRG")
        if not (0 <= df < len(self._rags)) or dr not in self._rags[df]:
            raise GraphStructureError(f"target node {dst} not in STRG")
        if attrs is None:
            attrs = TemporalEdgeAttributes.between(
                self.node_attrs(src), self.node_attrs(dst)
            )
        self._forward.setdefault(src, []).append(dst)
        self._backward.setdefault(dst, []).append(src)
        self._temporal_attrs[(src, dst)] = attrs

    # -- accessors ---------------------------------------------------------

    @property
    def rags(self) -> list[RegionAdjacencyGraph]:
        """Per-frame RAGs, in temporal order."""
        return self._rags

    def rag(self, frame: int) -> RegionAdjacencyGraph:
        """RAG of a given frame."""
        return self._rags[frame]

    @property
    def num_frames(self) -> int:
        """Number of frames in the segment."""
        return len(self._rags)

    def node_attrs(self, key: NodeKey) -> NodeAttributes:
        """Attributes of an STRG node addressed by ``(frame, region)``."""
        frame, region = key
        return self._rags[frame].node_attrs(region)

    def nodes(self) -> Iterator[NodeKey]:
        """Iterate over all ``(frame, region)`` node keys."""
        for rag in self._rags:
            for region in rag.nodes():
                yield (rag.frame_index, region)

    def number_of_nodes(self) -> int:
        """Total region count across all frames."""
        return sum(len(rag) for rag in self._rags)

    def successors(self, key: NodeKey) -> list[NodeKey]:
        """Temporal successors of a node (usually 0 or 1)."""
        return list(self._forward.get(key, ()))

    def predecessors(self, key: NodeKey) -> list[NodeKey]:
        """Temporal predecessors of a node."""
        return list(self._backward.get(key, ()))

    def temporal_edges(self) -> Iterator[tuple[NodeKey, NodeKey]]:
        """Iterate over temporal edges as ``(src, dst)``."""
        return iter(self._temporal_attrs.keys())

    def number_of_temporal_edges(self) -> int:
        """Total temporal edge count."""
        return len(self._temporal_attrs)

    def temporal_attrs(self, src: NodeKey, dst: NodeKey) -> TemporalEdgeAttributes:
        """Attributes of a temporal edge."""
        return self._temporal_attrs[(src, dst)]

    def has_temporal_edge(self, src: NodeKey, dst: NodeKey) -> bool:
        """Whether the temporal edge ``src -> dst`` exists."""
        return (src, dst) in self._temporal_attrs

    def temporal_subgraph(self, node_keys: Iterable[NodeKey]
                          ) -> "SpatioTemporalRegionGraph":
        """Node-induced temporal subgraph (Definition 8).

        The result contains the selected nodes, the spatial edges both of
        whose endpoints are selected (``E'_S = E_S ∩ (V' x V')``) and the
        temporal edges likewise (``E'_T = E_T ∩ (V' x V')``).  Frames keep
        their original indices; frames with no selected node become empty
        RAGs so temporal edges still span exactly one frame.
        """
        selected = set(node_keys)
        for key in selected:
            frame, region = key
            if not (0 <= frame < len(self._rags)) or region not in self._rags[frame]:
                raise GraphStructureError(f"node {key} not in STRG")
        sub = SpatioTemporalRegionGraph()
        for rag in self._rags:
            frame = rag.frame_index
            keep = [r for r in rag.nodes() if (frame, r) in selected]
            sub.append_rag(rag.subgraph(keep))
        for (src, dst), attrs in self._temporal_attrs.items():
            if src in selected and dst in selected:
                sub.add_temporal_edge(src, dst, attrs)
        return sub

    def is_linear_chain(self) -> bool:
        """Whether this graph is an ORG-shaped chain: no spatial edges and
        every node having at most one temporal predecessor/successor."""
        if any(rag.number_of_edges() for rag in self._rags):
            return False
        for key in self.nodes():
            if len(self.successors(key)) > 1 or len(self.predecessors(key)) > 1:
                return False
        return True

    def size_bytes(self) -> int:
        """Approximate footprint of the raw STRG — Equation (9)'s left side.

        The raw STRG stores every frame's full RAG plus 2 floats per
        temporal edge; this is the quantity the STRG-Index compresses
        (Section 5.4, Table 2).
        """
        rag_bytes = sum(rag.size_bytes() for rag in self._rags)
        return rag_bytes + 16 * self.number_of_temporal_edges()

    def __repr__(self) -> str:
        return (
            f"SpatioTemporalRegionGraph(frames={self.num_frames}, "
            f"nodes={self.number_of_nodes()}, "
            f"temporal_edges={self.number_of_temporal_edges()})"
        )
