"""Object Region Graphs and Object Graphs — Sections 2.3.1 and 2.3.2.

An **Object Region Graph (ORG)** is a temporal subgraph with no spatial
edges (Definition 8): the trajectory of one tracked region, a linear chain
of nodes connected by temporal edges.

An **Object Graph (OG)** merges the ORGs belonging to a single semantic
object (Theorem 1 / Section 2.3.2) and is the unit stored, clustered and
indexed by the STRG-Index.  For distance computation an OG exposes its node
*value series* — by default the per-frame centroid, matching the 2-D
trajectory data of the evaluation.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import EmptySequenceError, GraphStructureError
from repro.graph.attributes import NodeAttributes, TemporalEdgeAttributes

#: Global STRG node address.
NodeKey = tuple[int, int]

_OG_ID_LOCK = threading.Lock()
_OG_NEXT_ID = 0


def _next_og_id() -> int:
    global _OG_NEXT_ID
    with _OG_ID_LOCK:
        n = _OG_NEXT_ID
        _OG_NEXT_ID += 1
        return n


def claim_og_ids(minimum: int) -> None:
    """Advance the global OG id counter so future ids are ``>= minimum``.

    Loading a persisted corpus restores its stored og_ids verbatim;
    without this, a freshly started process would mint new OGs whose ids
    collide with loaded ones (OG identity, deletion and knn tie-breaking
    are all keyed by og_id).  ``repro.storage.serialize`` calls this
    after every load, so recovered databases can keep ingesting safely.
    """
    global _OG_NEXT_ID
    with _OG_ID_LOCK:
        if minimum > _OG_NEXT_ID:
            _OG_NEXT_ID = minimum


@dataclass
class ObjectRegionGraph:
    """Trajectory of a single tracked region.

    ``node_keys[i]`` is the ``(frame, region)`` address of the i-th node and
    ``attrs[i]`` its attributes; frames are consecutive.
    """

    node_keys: list[NodeKey]
    attrs: list[NodeAttributes]

    def __post_init__(self) -> None:
        if not self.node_keys:
            raise EmptySequenceError("ORG must contain at least one node")
        if len(self.node_keys) != len(self.attrs):
            raise GraphStructureError("node_keys and attrs length mismatch")
        frames = [key[0] for key in self.node_keys]
        if frames != list(range(frames[0], frames[0] + len(frames))):
            raise GraphStructureError("ORG frames must be consecutive")

    def __len__(self) -> int:
        return len(self.node_keys)

    @property
    def start_frame(self) -> int:
        """First frame of the trajectory."""
        return self.node_keys[0][0]

    @property
    def end_frame(self) -> int:
        """Last frame of the trajectory (inclusive)."""
        return self.node_keys[-1][0]

    def centroids(self) -> np.ndarray:
        """``(n, 2)`` centroid series."""
        return np.array([a.centroid for a in self.attrs], dtype=np.float64)

    def temporal_attrs(self) -> list[TemporalEdgeAttributes]:
        """Velocity/direction of each temporal edge along the chain."""
        return [
            TemporalEdgeAttributes.between(self.attrs[i], self.attrs[i + 1])
            for i in range(len(self.attrs) - 1)
        ]

    def mean_velocity(self) -> float:
        """Average centroid displacement per frame (0 for length-1 ORGs)."""
        edges = self.temporal_attrs()
        if not edges:
            return 0.0
        return float(np.mean([e.velocity for e in edges]))

    def mean_direction(self) -> float:
        """Circular-mean moving direction in radians (0 when stationary)."""
        edges = self.temporal_attrs()
        if not edges:
            return 0.0
        x = sum(math.cos(e.direction) for e in edges)
        y = sum(math.sin(e.direction) for e in edges)
        if x == 0.0 and y == 0.0:
            return 0.0
        return math.atan2(y, x)

    def overlaps(self, other: "ObjectRegionGraph") -> bool:
        """Whether the two trajectories share at least one frame."""
        return (self.start_frame <= other.end_frame
                and other.start_frame <= self.end_frame)

    def mean_centroid_gap(self, other: "ObjectRegionGraph") -> float:
        """Mean centroid distance over the shared frame span.

        ``inf`` when the trajectories do not overlap in time; used by OG
        merging to require spatial closeness in addition to matching motion.
        """
        lo = max(self.start_frame, other.start_frame)
        hi = min(self.end_frame, other.end_frame)
        if lo > hi:
            return float("inf")
        gaps = []
        for frame in range(lo, hi + 1):
            a = self.attrs[frame - self.start_frame].centroid
            b = other.attrs[frame - other.start_frame].centroid
            gaps.append(math.hypot(a[0] - b[0], a[1] - b[1]))
        return float(np.mean(gaps))


@dataclass
class ObjectGraph:
    """A merged, index-ready object trajectory.

    Attributes
    ----------
    values:
        ``(n, d)`` node value series used by all distance functions
        (default: centroids, ``d = 2``).
    frames:
        ``(n,)`` frame indices (consecutive).
    sizes:
        ``(n,)`` total pixel counts of the merged regions per frame.
    label:
        Optional ground-truth pattern/cluster id (used by the evaluation
        benchmarks; ``None`` for real pipeline output).
    og_id:
        Unique identifier within the process.
    meta:
        Free-form metadata (source video, member ORG count, ...).
    """

    values: np.ndarray
    frames: np.ndarray | None = None
    sizes: np.ndarray | None = None
    label: int | None = None
    og_id: int = field(default_factory=_next_og_id)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim == 1:
            self.values = self.values.reshape(-1, 1)
        if self.values.shape[0] == 0:
            raise EmptySequenceError("OG must contain at least one node")
        if self.frames is None:
            self.frames = np.arange(self.values.shape[0], dtype=np.int64)
        else:
            self.frames = np.asarray(self.frames, dtype=np.int64)
            if self.frames.shape[0] != self.values.shape[0]:
                raise GraphStructureError("frames and values length mismatch")
        if self.sizes is not None:
            self.sizes = np.asarray(self.sizes, dtype=np.float64)
            if self.sizes.shape[0] != self.values.shape[0]:
                raise GraphStructureError("sizes and values length mismatch")

    # -- construction -----------------------------------------------------

    @classmethod
    def from_values(cls, values, label: int | None = None,
                    frames=None, **meta) -> "ObjectGraph":
        """Build an OG directly from a value series (synthetic workloads)."""
        return cls(values=np.asarray(values, dtype=np.float64), label=label,
                   frames=frames, meta=dict(meta))

    @classmethod
    def from_orgs(cls, orgs: Sequence[ObjectRegionGraph],
                  label: int | None = None, **meta) -> "ObjectGraph":
        """Merge member ORGs into a single OG (Section 2.3.2).

        Per shared frame, the merged centroid is the size-weighted mean of
        the member centroids and the merged size their sum — the graph
        analogue of the region-merging illustrated in Figure 3.
        """
        if not orgs:
            raise EmptySequenceError("cannot merge zero ORGs")
        lo = min(org.start_frame for org in orgs)
        hi = max(org.end_frame for org in orgs)
        n = hi - lo + 1
        weighted = np.zeros((n, 2), dtype=np.float64)
        weights = np.zeros(n, dtype=np.float64)
        for org in orgs:
            for i, attrs in enumerate(org.attrs):
                t = org.start_frame + i - lo
                weighted[t] += attrs.size * np.asarray(attrs.centroid)
                weights[t] += attrs.size
        covered = weights > 0
        if not np.all(covered):
            # Frames uncovered by any member ORG (gaps between merged
            # trajectories) are filled by linear interpolation.
            idx = np.arange(n)
            for k in range(2):
                weighted[covered, k] /= weights[covered]
                weighted[~covered, k] = np.interp(
                    idx[~covered], idx[covered], weighted[covered, k]
                )
            centroids = weighted
            weights[~covered] = np.interp(
                idx[~covered], idx[covered], weights[covered]
            )
        else:
            centroids = weighted / weights[:, None]
        return cls(
            values=centroids,
            frames=np.arange(lo, hi + 1, dtype=np.int64),
            sizes=weights,
            label=label,
            meta={"num_orgs": len(orgs), **meta},
        )

    # -- accessors ---------------------------------------------------------

    def __len__(self) -> int:
        return self.values.shape[0]

    @property
    def dim(self) -> int:
        """Feature dimension of the node values."""
        return self.values.shape[1]

    @property
    def start_frame(self) -> int:
        """First frame index."""
        return int(self.frames[0])

    @property
    def end_frame(self) -> int:
        """Last frame index (inclusive)."""
        return int(self.frames[-1])

    def duration(self) -> int:
        """Trajectory length in frames."""
        return len(self)

    def velocities(self) -> np.ndarray:
        """Per-step displacement magnitudes, shape ``(n - 1,)``."""
        if len(self) < 2:
            return np.zeros(0, dtype=np.float64)
        return np.sqrt(np.sum(np.diff(self.values[:, :2], axis=0) ** 2, axis=1))

    def mean_velocity(self) -> float:
        """Average displacement per frame (0 for single-node OGs)."""
        v = self.velocities()
        return float(v.mean()) if v.size else 0.0

    def bounding_box(self) -> tuple[float, float, float, float]:
        """``(x_min, y_min, x_max, y_max)`` of the trajectory."""
        xy = self.values[:, :2]
        mins = xy.min(axis=0)
        maxs = xy.max(axis=0)
        return (float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1]))

    def size_bytes(self) -> int:
        """Approximate footprint used by the Eq. 9/10 size accounting."""
        total = 8 * self.values.size + 8 * self.frames.size
        if self.sizes is not None:
            total += 8 * self.sizes.size
        return total

    def __hash__(self) -> int:
        return hash(self.og_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ObjectGraph) and other.og_id == self.og_id

    def __repr__(self) -> str:
        label = f", label={self.label}" if self.label is not None else ""
        return (
            f"ObjectGraph(id={self.og_id}, len={len(self)}, "
            f"dim={self.dim}{label})"
        )
