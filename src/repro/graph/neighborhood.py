"""Neighborhood graphs — Definition 7.

``G_N(v)`` is the star subgraph of a RAG around ``v``: the node ``v``, all
its adjacent nodes, and the edges ``(v, u)`` to each of them.  Tracking
(Algorithm 1) matches regions across frames by matching their neighborhood
graphs.
"""

from __future__ import annotations

from repro.errors import GraphStructureError
from repro.graph.rag import RegionAdjacencyGraph


def neighborhood_graph(rag: RegionAdjacencyGraph, v: int) -> RegionAdjacencyGraph:
    """The neighborhood graph ``G_N(v)`` of node ``v``.

    Per Definition 7 the result contains ``v``, every adjacent node ``u``
    and the star edges ``(v, u)`` — edges *between* neighbors are excluded.
    """
    if v not in rag:
        raise GraphStructureError(f"node {v} not in RAG")
    sub = RegionAdjacencyGraph(rag.frame_index)
    sub.add_node(v, rag.node_attrs(v))
    for u in rag.neighbors(v):
        sub.add_node(u, rag.node_attrs(u))
        sub.add_edge(v, u, rag.edge_attrs(v, u))
    return sub
