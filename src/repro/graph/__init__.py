"""Graph substrate: RAGs, STRGs, tracking and decomposition.

Implements Section 2 of the paper:

- :mod:`repro.graph.attributes` — node / spatial-edge / temporal-edge
  attribute models (Definitions 1 and 2).
- :mod:`repro.graph.rag` — Region Adjacency Graph construction.
- :mod:`repro.graph.strg` — Spatio-Temporal Region Graph.
- :mod:`repro.graph.isomorphism` — (sub)graph isomorphism on attributed
  graphs (Definitions 3-5).
- :mod:`repro.graph.common_subgraph` — most common subgraph via the
  association-graph / maximal-clique reduction (Definition 6).
- :mod:`repro.graph.neighborhood` — neighborhood graphs (Definition 7).
- :mod:`repro.graph.tracking` — graph-based tracking (Algorithm 1).
- :mod:`repro.graph.object_graph` — Object Graphs.
- :mod:`repro.graph.decomposition` — ORG extraction, OG merging and
  background-graph elimination (Section 2.3).
"""

from repro.graph.attributes import (
    NodeAttributes,
    SpatialEdgeAttributes,
    TemporalEdgeAttributes,
    AttributeTolerance,
)
from repro.graph.rag import RegionAdjacencyGraph
from repro.graph.strg import SpatioTemporalRegionGraph
from repro.graph.neighborhood import neighborhood_graph
from repro.graph.isomorphism import (
    find_isomorphism,
    find_subgraph_isomorphism,
    is_isomorphic,
)
from repro.graph.common_subgraph import (
    most_common_subgraph,
    sim_graph,
)
from repro.graph.merge import (
    union_graphs,
    combine_mappings,
    is_embedding,
    merge_isomorphic_pairs,
)
from repro.graph.tracking import GraphTracker, TrackerConfig
from repro.graph.object_graph import ObjectGraph, ObjectRegionGraph
from repro.graph.decomposition import (
    BackgroundGraph,
    STRGDecomposition,
    decompose,
    extract_object_region_graphs,
    merge_object_region_graphs,
    extract_background_graph,
)

__all__ = [
    "NodeAttributes",
    "SpatialEdgeAttributes",
    "TemporalEdgeAttributes",
    "AttributeTolerance",
    "RegionAdjacencyGraph",
    "SpatioTemporalRegionGraph",
    "neighborhood_graph",
    "find_isomorphism",
    "find_subgraph_isomorphism",
    "is_isomorphic",
    "most_common_subgraph",
    "sim_graph",
    "union_graphs",
    "combine_mappings",
    "is_embedding",
    "merge_isomorphic_pairs",
    "GraphTracker",
    "TrackerConfig",
    "ObjectGraph",
    "ObjectRegionGraph",
    "BackgroundGraph",
    "STRGDecomposition",
    "decompose",
    "extract_object_region_graphs",
    "merge_object_region_graphs",
    "extract_background_graph",
]
