"""Region Adjacency Graph (Definition 1).

A RAG ``Gr(f_n) = {V, E_S, nu, xi}`` has one node per segmented region of a
frame and one spatial edge per pair of adjacent regions.  Nodes carry
:class:`~repro.graph.attributes.NodeAttributes` and spatial edges carry
:class:`~repro.graph.attributes.SpatialEdgeAttributes`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import networkx as nx

from repro.errors import GraphStructureError
from repro.graph.attributes import NodeAttributes, SpatialEdgeAttributes


class RegionAdjacencyGraph:
    """Attributed region adjacency graph of a single frame.

    Nodes are integer region identifiers (unique within the frame); spatial
    edges connect regions that share a pixel boundary.
    """

    def __init__(self, frame_index: int = 0):
        self.frame_index = frame_index
        self._graph = nx.Graph()

    # -- construction -----------------------------------------------------

    @classmethod
    def from_regions(cls, regions: Mapping[int, NodeAttributes],
                     adjacency: Iterable[tuple[int, int]],
                     frame_index: int = 0) -> "RegionAdjacencyGraph":
        """Build a RAG from region attributes and an adjacency relation.

        ``regions`` maps region ids to node attributes; ``adjacency`` lists
        pairs of adjacent region ids.  Edge attributes (centroid distance
        and orientation) are derived from the node attributes, as in
        Definition 1.
        """
        rag = cls(frame_index)
        for rid, attrs in regions.items():
            rag.add_node(rid, attrs)
        for u, v in adjacency:
            rag.add_edge(u, v)
        return rag

    def add_node(self, node_id: int, attrs: NodeAttributes) -> None:
        """Add a region node with its attributes."""
        self._graph.add_node(node_id, attrs=attrs)

    def add_edge(self, u: int, v: int,
                 attrs: SpatialEdgeAttributes | None = None) -> None:
        """Add a spatial edge; attributes default to the centroid-derived
        distance/orientation of Definition 1."""
        if u not in self._graph or v not in self._graph:
            raise GraphStructureError(
                f"edge ({u}, {v}) references a node missing from the RAG"
            )
        if u == v:
            raise GraphStructureError(f"self-loop on node {u} is not allowed")
        if attrs is None:
            attrs = SpatialEdgeAttributes.between(
                self.node_attrs(u), self.node_attrs(v)
            )
        self._graph.add_edge(u, v, attrs=attrs)

    # -- accessors ---------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        """The underlying :class:`networkx.Graph` (nodes keyed by region id)."""
        return self._graph

    def node_attrs(self, node_id: int) -> NodeAttributes:
        """Attributes of a region node."""
        return self._graph.nodes[node_id]["attrs"]

    def edge_attrs(self, u: int, v: int) -> SpatialEdgeAttributes:
        """Attributes of a spatial edge."""
        return self._graph.edges[u, v]["attrs"]

    def nodes(self) -> Iterator[int]:
        """Iterate over region ids."""
        return iter(self._graph.nodes)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over spatial edges as ``(u, v)`` pairs."""
        return iter(self._graph.edges)

    def neighbors(self, node_id: int) -> Iterator[int]:
        """Region ids adjacent to ``node_id``."""
        return iter(self._graph.neighbors(node_id))

    def degree(self, node_id: int) -> int:
        """Number of adjacent regions."""
        return self._graph.degree[node_id]

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def number_of_edges(self) -> int:
        """Number of spatial edges."""
        return self._graph.number_of_edges()

    def subgraph(self, node_ids: Iterable[int]) -> "RegionAdjacencyGraph":
        """Node-induced subgraph (Definition 3) as a new RAG."""
        sub = RegionAdjacencyGraph(self.frame_index)
        sub._graph = self._graph.subgraph(list(node_ids)).copy()
        return sub

    def size_bytes(self) -> int:
        """Approximate in-memory footprint used by the Eq. 9/10 accounting.

        Counts 8 bytes per attribute float/int: nodes carry 6 values
        (size, 3x color, 2x centroid) and edges 2 (distance, orientation).
        """
        return 8 * (6 * len(self) + 2 * self.number_of_edges())

    def __repr__(self) -> str:
        return (
            f"RegionAdjacencyGraph(frame={self.frame_index}, "
            f"nodes={len(self)}, edges={self.number_of_edges()})"
        )
