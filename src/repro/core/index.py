"""The STRG-Index: build (Algorithm 2), maintenance (Section 5.3) and
k-NN search (Algorithm 3).

The index clusters OGs with EM + non-metric EGED, synthesizes a centroid
OG per cluster, and keys each member by the *metric* EGED to its centroid.
Because ``EGED_M`` is a metric (Theorem 2), the key difference
``|Key_q - Key_o|`` lower-bounds the true distance, which is what lets
search skip distance evaluations — the effect Figure 7(b) measures.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.clustering.bic import bic_score, select_num_clusters
from repro.clustering.em import EMClustering, EMConfig
from repro.core.nodes import (
    ClusterNode,
    ClusterRecord,
    LeafNode,
    LeafRecord,
    RootRecord,
)
from repro.distance.base import Distance, as_series
from repro.distance.batch import one_vs_many, supports_batch
from repro.distance.eged import EGED, MetricEGED
from repro.errors import IndexStateError, InvalidParameterError
from repro.graph.decomposition import BackgroundGraph
from repro.graph.object_graph import ObjectGraph
from repro.observability import OBS

#: Guards lazy sketch construction.  Module-level (not per-index) so a
#: frozen, deep-copied serving snapshot stays ``copy.deepcopy``-able —
#: an index never owns an uncopyable lock object.
_SKETCH_BUILD_LOCK = threading.Lock()


@dataclass
class STRGIndexConfig:
    """STRG-Index tuning.

    ``leaf_capacity`` triggers the BIC split test of Section 5.3;
    ``bg_similarity_threshold`` decides when an incoming segment's BG
    matches an existing root record; ``n_clusters`` fixes the cluster
    count at build time (``None`` selects it by BIC, Section 4.2).
    """

    leaf_capacity: int = 32
    bg_similarity_threshold: float = 0.5
    n_clusters: int | None = None
    k_max: int = 15
    em_iterations: int = 25
    cluster_sample_size: int | None = None
    metric_gap: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.leaf_capacity < 2:
            raise InvalidParameterError(
                f"leaf_capacity must be >= 2, got {self.leaf_capacity}"
            )
        if not 0.0 <= self.bg_similarity_threshold <= 1.0:
            raise InvalidParameterError(
                "bg_similarity_threshold must be in [0, 1]"
            )
        if self.cluster_sample_size is not None and self.cluster_sample_size < 2:
            raise InvalidParameterError(
                "cluster_sample_size must be >= 2 when set, "
                f"got {self.cluster_sample_size}"
            )


class STRGIndex:
    """Three-level STRG-Index over Object Graphs."""

    def __init__(self, config: STRGIndexConfig | None = None,
                 metric_distance: Distance | Callable | None = None,
                 cluster_distance: Distance | None = None):
        self.config = config or STRGIndexConfig()
        #: Metric distance for leaf keys and query evaluation (EGED_M).
        self.metric_distance = (
            metric_distance
            if metric_distance is not None
            else MetricEGED(self.config.metric_gap)
        )
        #: Non-metric distance for clustering (EGED).
        self.cluster_distance = cluster_distance or EGED()
        self.root: list[RootRecord] = []
        self._next_root_id = 0
        #: Bumped on every structural change (build/insert/delete/split).
        #: Readers that cache derived structures (e.g. the serving layer's
        #: pivot bounds) compare this to detect staleness.
        self.mutations = 0
        #: Set by :meth:`freeze`; frozen indexes reject mutation, which is
        #: what lets published serving snapshots be shared across threads.
        self.frozen = False
        #: Tuning for the approximate tier's sketches (``None`` uses the
        #: :class:`~repro.search.sketch.SketchConfig` defaults).
        self.sketch_config = None
        #: Lazily-built :class:`~repro.search.sketch.SketchIndex` backing
        #: budgeted (``search_budget=``) queries; maintained incrementally
        #: by :meth:`insert` / :meth:`delete` once built, persisted in
        #: snapshots, and rebuilt on demand when absent.
        self._sketches = None

    def freeze(self) -> "STRGIndex":
        """Mark the index immutable (mutations raise ``IndexStateError``).

        Freezing is how the serving layer guarantees snapshot isolation:
        readers share a frozen index while writers accumulate into a new
        one.  Returns ``self`` for chaining.  There is no unfreeze — build
        a new index (or deep-copy this one) to mutate again.
        """
        self.frozen = True
        return self

    def _check_mutable(self) -> None:
        if self.frozen:
            raise IndexStateError(
                "index is frozen (published as a serving snapshot); "
                "mutate a copy instead"
            )

    # -- construction (Algorithm 2) -----------------------------------------

    def build(self, ogs: Sequence[ObjectGraph],
              background: BackgroundGraph | None = None,
              clip_refs: Sequence[Any] | None = None) -> RootRecord:
        """Build the index tree for one video segment (Algorithm 2).

        Creates a root record for ``background``, clusters ``ogs`` with
        EM-EGED (cluster count from config or BIC), synthesizes centroid
        OGs, and fills the leaf nodes with metric keys.

        When ``cluster_sample_size`` is configured and smaller than the
        input, EM runs on a random sample and the remaining OGs are
        assigned to the nearest synthesized centroid — the scalable
        build path for large databases (assignment is the O(K M) cost
        the paper's Section 6.3 analysis charges to index construction).
        """
        if not ogs:
            raise IndexStateError("cannot build an index from zero OGs")
        if clip_refs is not None and len(clip_refs) != len(ogs):
            raise InvalidParameterError(
                f"{len(ogs)} OGs but {len(clip_refs)} clip refs"
            )
        self._check_mutable()
        self.mutations += 1
        with OBS.span("index.build", ogs=len(ogs)):
            return self._build(ogs, background, clip_refs)

    def _build(self, ogs: Sequence[ObjectGraph],
               background: BackgroundGraph | None,
               clip_refs: Sequence[Any] | None) -> RootRecord:
        sample_size = self.config.cluster_sample_size
        rng = np.random.default_rng(self.config.seed)
        if sample_size is not None and sample_size < len(ogs):
            sample_idx = rng.choice(len(ogs), size=sample_size, replace=False)
            sample = [ogs[int(i)] for i in sample_idx]
        else:
            sample = list(ogs)

        k = self.config.n_clusters
        if k is None:
            k, _ = select_num_clusters(
                sample, 1, min(self.config.k_max, len(sample)),
                distance=self.cluster_distance, seed=self.config.seed,
                max_iterations=self.config.em_iterations,
            )
        k = min(k, len(sample))
        em = EMClustering(
            EMConfig(n_clusters=k, max_iterations=self.config.em_iterations,
                     seed=self.config.seed),
            distance=self.cluster_distance,
        )
        result = em.fit(sample)

        root_record = RootRecord(self._next_root_id, background)
        self._next_root_id += 1
        self.root.append(root_record)
        records = [
            root_record.cluster_node.add(result.centroids[c])
            for c in range(result.num_clusters)
        ]

        sampled_cluster = {
            og.og_id if isinstance(og, ObjectGraph) else id(og):
                int(result.assignments[i])
            for i, og in enumerate(sample)
        }
        refs = list(clip_refs) if clip_refs is not None else [None] * len(ogs)
        cluster_of = [
            sampled_cluster.get(
                og.og_id if isinstance(og, ObjectGraph) else id(og)
            )
            for og in ogs
        ]
        if supports_batch(self.metric_distance):
            # Batched key computation: one DP sweep per (cluster, member
            # group) for EM-assigned OGs, and one sweep per centroid over
            # the out-of-sample OGs (the O(K M) assignment of Section
            # 6.3's build cost) — the same evaluations as the per-pair
            # path, so CountingDistance totals are unchanged.
            og_series = [as_series(og) for og in ogs]
            keys = np.empty(len(ogs), dtype=np.float64)
            target = np.empty(len(ogs), dtype=np.int64)
            grouped: dict[int, list[int]] = {}
            unassigned: list[int] = []
            for j, cluster in enumerate(cluster_of):
                if cluster is None:
                    unassigned.append(j)
                else:
                    grouped.setdefault(cluster, []).append(j)
            for cluster, members in grouped.items():
                target[members] = cluster
                keys[members] = one_vs_many(
                    self.metric_distance, records[cluster].centroid,
                    [og_series[j] for j in members],
                )
            if unassigned:
                cols = np.stack([
                    one_vs_many(self.metric_distance, record.centroid,
                                [og_series[j] for j in unassigned])
                    for record in records
                ], axis=1)
                best = np.argmin(cols, axis=1)
                keys[unassigned] = cols[np.arange(len(unassigned)), best]
                target[unassigned] = best
            for j, og in enumerate(ogs):
                records[int(target[j])].leaf.insert(
                    LeafRecord(float(keys[j]), og, refs[j])
                )
        else:
            # Per-pair fallback preserving the (og, centroid) call order
            # for arbitrary (possibly asymmetric) metric callables.
            for j, og in enumerate(ogs):
                cluster = cluster_of[j]
                if cluster is not None:
                    record = records[cluster]
                    key = self.metric_distance(og, record.centroid)
                else:
                    pairs = [self.metric_distance(og, r.centroid)
                             for r in records]
                    best = int(np.argmin(pairs))
                    record = records[best]
                    key = pairs[best]
                record.leaf.insert(LeafRecord(key, og, refs[j]))
        for record in list(records):
            if len(record.leaf) == 0:
                root_record.cluster_node.remove(record)
        if self._sketches is not None:
            self._sketches.add(self.metric_distance, list(ogs), refs)
        return root_record

    # -- maintenance (Section 5.3) -------------------------------------------

    def insert(self, og: ObjectGraph,
               background: BackgroundGraph | None = None,
               clip_ref: Any = None) -> None:
        """Insert one OG, splitting its leaf if the BIC test demands it.

        The OG joins the root record whose BG best matches ``background``
        (or the only/first record when no background is given), then the
        cluster whose centroid is nearest under the metric distance.
        """
        self._check_mutable()
        self.mutations += 1
        with OBS.span("index.insert"):
            if not self.root:
                self.build([og], background, [clip_ref])
                return
            root_record = self._match_root(background)
            if root_record is None:
                self.build([og], background, [clip_ref])
                return
            cluster_node = root_record.cluster_node
            if len(cluster_node) == 0:
                record = cluster_node.add(as_series(og).copy())
                key = float(self.metric_distance(og, record.centroid))
            else:
                records = cluster_node.records
                dists = self._keys_to_centroids(
                    og, [r.centroid for r in records]
                )
                best = int(np.argmin(dists))
                record = records[best]
                key = float(dists[best])
            record.leaf.insert(LeafRecord(key, og, clip_ref))
            if self._sketches is not None:
                # Splits never change membership, so appending one
                # sketch row here keeps row set == leaf set exactly.
                self._sketches.add(self.metric_distance, [og], [clip_ref])
            if len(record.leaf) > self.config.leaf_capacity:
                self._maybe_split(cluster_node, record)

    def _keys_to_centroids(self, og, centroids: list[np.ndarray]
                           ) -> np.ndarray:
        """Metric key of one OG/query against many centroids.

        Batch-capable metrics run the kernel *centroid-first* — the same
        direction :meth:`build` uses for the stored leaf keys — because
        the vectorized DP is only mathematically (not bit-for-bit)
        symmetric, and key lookups of already-indexed objects (e.g. a
        ``range_query`` with radius 0) rely on exact key equality.
        Other metrics keep the per-pair ``(og, centroid)`` call order,
        matching their per-pair build path.
        """
        if supports_batch(self.metric_distance):
            series = as_series(og)
            return np.array(
                [float(one_vs_many(self.metric_distance, c, [series])[0])
                 for c in centroids],
                dtype=np.float64,
            )
        return np.array(
            [float(self.metric_distance(og, c)) for c in centroids],
            dtype=np.float64,
        )

    def _match_root(self, background: BackgroundGraph | None
                    ) -> RootRecord | None:
        """Root record whose BG is most similar to ``background``.

        Without a background, the first root record is used.  Returns
        ``None`` when the best similarity falls below the threshold,
        signalling that a new root record is needed.
        """
        if background is None or all(
            r.background is None for r in self.root
        ):
            return self.root[0]
        best = None
        best_sim = -1.0
        for record in self.root:
            if record.background is None:
                continue
            sim = record.background.similarity(background)
            if sim > best_sim:
                best_sim = sim
                best = record
        if best is None or best_sim < self.config.bg_similarity_threshold:
            return None
        return best

    def _maybe_split(self, cluster_node: ClusterNode,
                     record: ClusterRecord) -> None:
        """BIC-driven leaf split (Section 5.3).

        Fit EM with K=1 and K=2 on the leaf's OGs; split only when
        ``BIC(K=2) > BIC(K=1)``, replacing the cluster record with two new
        records (and re-keying the members).
        """
        ogs = record.leaf.object_graphs()
        refs = [r.clip_ref for r in record.leaf]
        scores = []
        results = []
        for k in (1, 2):
            em = EMClustering(
                EMConfig(n_clusters=k,
                         max_iterations=self.config.em_iterations,
                         seed=self.config.seed),
                distance=self.cluster_distance,
            )
            result = em.fit(ogs)
            results.append(result)
            scores.append(bic_score(result, len(ogs)))
        if scores[1] <= scores[0]:
            return  # the node remains unchanged
        two = results[1]
        if len(np.unique(two.assignments)) < 2:
            return  # degenerate split: everything on one side
        cluster_node.remove(record)
        for c in range(2):
            members = two.cluster_members(c)
            if members.size == 0:
                continue
            new_record = cluster_node.add(two.centroids[c])
            member_ogs = [ogs[int(j)] for j in members]
            if supports_batch(self.metric_distance):
                # Built-in metrics are symmetric: one sweep keys the
                # whole member group against the new centroid.
                keys = one_vs_many(self.metric_distance,
                                   new_record.centroid, member_ogs)
            else:
                keys = [self.metric_distance(og, new_record.centroid)
                        for og in member_ogs]
            for pos, j in enumerate(members):
                new_record.leaf.insert(
                    LeafRecord(float(keys[pos]), ogs[int(j)], refs[int(j)])
                )

    def delete(self, og_id: int) -> bool:
        """Remove the OG with ``og_id`` from the index.

        Empty cluster records (and then empty root records) are dropped,
        the maintenance counterpart of Section 5.3's note that centroids
        are "updated as the member OGs are changed such as inserting,
        deleting".  Returns ``True`` when the OG was found.
        """
        self._check_mutable()
        self.mutations += 1
        for root_record in list(self.root):
            cluster_node = root_record.cluster_node
            for record in list(cluster_node.records):
                removed = record.leaf.remove(og_id)
                if removed is None:
                    continue
                if len(record.leaf) == 0:
                    cluster_node.remove(record)
                if len(cluster_node) == 0:
                    self.root.remove(root_record)
                if self._sketches is not None:
                    self._sketches.remove(og_id)
                return True
        return False

    # -- search (Algorithm 3) ---------------------------------------------------

    def knn(self, query: ObjectGraph | np.ndarray, k: int,
            background: BackgroundGraph | None = None,
            n_probe: int | None = None,
            search_budget: int | None = None
            ) -> list[tuple[float, ObjectGraph, Any]]:
        """k nearest OGs to the query, as ``(distance, og, clip_ref)``.

        Follows Algorithm 3: match the query BG at the root (skipped when
        no background is supplied — then every cluster node is searched),
        rank clusters by metric centroid distance, and scan each leaf
        outward from ``Key_q`` pruning with ``|Key - Key_q| > kth_best``
        (a valid lower bound because ``EGED_M`` is a metric).

        ``k = 0`` legally yields ``[]`` and ``k`` larger than the corpus
        returns every OG, ranked — neither is an error.

        ``n_probe`` bounds how many nearest clusters are scanned:
        ``None`` (default) gives exact k-NN; ``1`` is the literal
        Algorithm 3, which descends only the best-matching cluster —
        faster and *cluster-faithful* (results share the query's cluster),
        the behaviour behind the paper's precision/recall advantage in
        Figure 7(c).

        ``search_budget`` switches to the two-stage *approximate* tier
        (``repro.search``, see ``docs/SEARCH.md``): candidate generation
        over per-OG sketches followed by an exact rerank spending at
        most ``search_budget`` distance evaluations.  The default
        (``None``) keeps the exact path bit-identical to before the
        knob existed.  The budgeted path searches the whole corpus
        (background routing and ``n_probe`` apply to the exact path
        only); a budget of at least ``len(index) + num_pivots``
        degenerates to exact results.
        """
        if k < 0:
            raise InvalidParameterError(f"k must be >= 0, got {k}")
        if k == 0:
            return []
        if n_probe is not None and n_probe < 1:
            raise InvalidParameterError(f"n_probe must be >= 1, got {n_probe}")
        if search_budget is not None and search_budget < 1:
            raise InvalidParameterError(
                f"search_budget must be >= 1, got {search_budget}"
            )
        if not self.root:
            raise IndexStateError("cannot search an empty STRG-Index")
        if search_budget is not None:
            return self._approx_knn(query, k, search_budget)
        with OBS.span("index.knn", k=k, n_probe=n_probe) as sp:
            OBS.count("index.knn_queries")
            best = self._knn(query, k, background, n_probe)
            sp.set(hits=len(best))
            return best

    def _approx_knn(self, query, k: int, search_budget: int
                    ) -> list[tuple[float, ObjectGraph, Any]]:
        from repro.search.sketch import approx_knn

        return approx_knn(self.sketch_tier(), self.metric_distance,
                          query, k, search_budget)

    def sketch_tier(self):
        """The :class:`~repro.search.sketch.SketchIndex` for this corpus.

        Built lazily on first use (one batched pivot sweep over every
        leaf record) and maintained incrementally afterwards.  Safe on a
        frozen index: attaching the sketch is not a structural mutation,
        and the module-level build lock keeps concurrent readers of a
        shared serving snapshot from building it twice.

        An index restored from a columnar snapshot gets its sketch
        re-attached from the store's ``sketch_*`` columns instead
        (zero-copy views under ``load_index(mmap=True)``), skipping the
        pivot sweep; fully out-of-core budgeted search — sketch scan
        and shortlist fetch both streamed from the store, no tree at
        all — lives one layer up, in
        :meth:`repro.storage.columnar.ColumnarStore.load_sketch` and
        lazy :func:`repro.open_database` (see ``docs/SEARCH.md``).
        """
        sketch = self._sketches
        if sketch is not None:
            return sketch
        from repro.search.sketch import SketchIndex

        with _SKETCH_BUILD_LOCK:
            if self._sketches is None:
                records = [
                    (leaf_record.og, leaf_record.clip_ref)
                    for root_record in self.root
                    for cluster_record in root_record.cluster_node
                    for leaf_record in cluster_record.leaf
                ]
                with OBS.span("search.sketch_build", ogs=len(records)):
                    self._sketches = SketchIndex.build(
                        self.metric_distance,
                        [og for og, _ in records],
                        [ref for _, ref in records],
                        self.sketch_config,
                    )
            return self._sketches

    def _knn(self, query: ObjectGraph | np.ndarray, k: int,
             background: BackgroundGraph | None,
             n_probe: int | None) -> list[tuple[float, ObjectGraph, Any]]:
        if background is not None:
            matched = self._match_root(background)
            root_records = [matched] if matched is not None else list(self.root)
        else:
            root_records = list(self.root)

        # Rank candidate clusters (these distance evaluations are part of
        # the query cost).  Exact search ranks by the metric distance the
        # pruning bound needs; probed search follows Algorithm 3, which
        # picks the similar centroid with the *non-metric* EGED (step 3)
        # before computing the metric key (step 4).
        records = [
            record
            for root_record in root_records
            for record in root_record.cluster_node
        ]
        ranked: list[tuple[float, ClusterRecord]] = []
        if records:
            if n_probe is not None:
                probe = one_vs_many(
                    self.cluster_distance, query,
                    [r.centroid for r in records],
                )
                order = np.argsort(probe, kind="stable")[:n_probe]
                records = [records[int(i)] for i in order]
            key_qs = self._keys_to_centroids(
                query, [r.centroid for r in records]
            )
            order = np.argsort(key_qs, kind="stable")
            ranked = [
                (float(key_qs[int(i)]), records[int(i)]) for i in order
            ]

        best: list[tuple[float, ObjectGraph, Any]] = []

        def kth_best() -> tuple[float, float]:
            # (distance, og_id) of the current k-th hit.  Ordering by the
            # pair makes tie-breaking deterministic: equal distances are
            # resolved by og_id, so a sharded search over the same corpus
            # returns bit-identical answers regardless of scan order.
            if len(best) == k:
                return (best[-1][0], best[-1][1].og_id)
            return (float("inf"), float("inf"))

        for key_q, record in ranked:
            leaf = record.leaf
            if len(leaf) == 0:
                continue
            # Whole-cluster prune: nearest possible member is
            # max(key_q - max_key, 0).  Strict >: a candidate whose lower
            # bound ties the k-th distance can still win on og_id.
            if key_q - leaf.max_key() > kth_best()[0]:
                OBS.count("index.clusters_pruned")
                continue
            self._scan_leaf(leaf, query, key_q, k, best, kth_best)
        return best

    def _evaluate(self, query, og: ObjectGraph) -> float:
        """Query-to-candidate metric distance for a returned hit.

        Routed through the batched kernel (query-first, batch of one)
        whenever the metric supports it: the kernel is bit-invariant to
        batch composition, so the sharded serving layer — which evaluates
        whole candidate windows in one batched sweep — returns distances
        bit-identical to this per-record path.  Metrics without a batch
        kernel (e.g. counting wrappers in tests) keep the plain scalar
        call.
        """
        if supports_batch(self.metric_distance):
            return float(one_vs_many(self.metric_distance, query, [og])[0])
        return float(self.metric_distance(query, og))

    def _scan_leaf(self, leaf: LeafNode, query, key_q: float, k: int,
                   best: list, kth_best) -> None:
        """Expand outward from the query key position in a sorted leaf."""
        OBS.count("index.leaf_scans")
        keys = leaf.keys
        records = leaf.records
        pos = bisect.bisect_left(keys, key_q)
        left = pos - 1
        right = pos
        n = len(records)
        while left >= 0 or right < n:
            go_left = left >= 0 and (
                right >= n or key_q - keys[left] <= keys[right] - key_q
            )
            if go_left:
                idx = left
                left -= 1
            else:
                idx = right
                right += 1
            gap = abs(keys[idx] - key_q)
            if gap > kth_best()[0]:
                # All remaining records in this direction are farther in
                # key space; if both directions exceed, we are done.
                if go_left:
                    left = -1
                else:
                    right = n
                continue
            record = records[idx]
            d = self._evaluate(query, record.og)
            if (d, record.og.og_id) < kth_best():
                entry = (d, record.og, record.clip_ref)
                bisect.insort(best, entry, key=lambda e: (e[0], e[1].og_id))
                if len(best) > k:
                    best.pop()

    def range_query(self, query, radius: float,
                    background: BackgroundGraph | None = None
                    ) -> list[tuple[float, ObjectGraph, Any]]:
        """All OGs within ``radius`` of the query."""
        if radius < 0:
            raise InvalidParameterError(f"radius must be >= 0, got {radius}")
        if not self.root:
            raise IndexStateError("cannot search an empty STRG-Index")
        with OBS.span("index.range_query", radius=radius) as sp:
            results = self._range_query(query, radius, background)
            sp.set(hits=len(results))
            return results

    def _range_query(self, query, radius: float,
                     background: BackgroundGraph | None
                     ) -> list[tuple[float, ObjectGraph, Any]]:
        if background is not None:
            matched = self._match_root(background)
            root_records = [matched] if matched is not None else list(self.root)
        else:
            root_records = list(self.root)
        results: list[tuple[float, ObjectGraph, Any]] = []
        for root_record in root_records:
            records = list(root_record.cluster_node)
            if not records:
                continue
            key_qs = self._keys_to_centroids(
                query, [r.centroid for r in records]
            )
            for key_q, record in zip(key_qs, records):
                for leaf_record in record.leaf:
                    if abs(leaf_record.key - key_q) > radius:
                        continue
                    d = self._evaluate(query, leaf_record.og)
                    if d <= radius:
                        results.append((d, leaf_record.og, leaf_record.clip_ref))
        return sorted(results, key=lambda item: (item[0], item[1].og_id))

    # -- introspection -----------------------------------------------------------

    def cluster_records(self, background: BackgroundGraph | None = None
                        ) -> list[ClusterRecord]:
        """Cluster records in stable order (optionally BG-routed).

        With a ``background``, the records of the best-matching root are
        returned (all records when nothing matches) — the same routing
        :meth:`knn` applies.  The serving layer's sharded scatter-gather
        iterates this list directly so it can share one global bound
        across shards.
        """
        if background is not None:
            matched = self._match_root(background)
            roots = [matched] if matched is not None else list(self.root)
        else:
            roots = list(self.root)
        return [record for root in roots for record in root.cluster_node]

    def object_graphs(self):
        """Iterate over every indexed OG (all roots, clusters, leaves)."""
        for root_record in self.root:
            for cluster_record in root_record.cluster_node:
                for leaf_record in cluster_record.leaf:
                    yield leaf_record.og

    def __len__(self) -> int:
        return sum(
            record.cluster_node.total_ogs() for record in self.root
        )

    def num_clusters(self) -> int:
        """Total cluster records across all root records."""
        return sum(len(record.cluster_node) for record in self.root)

    def stats(self) -> dict[str, int]:
        """Level-by-level record counts."""
        return {
            "root_records": len(self.root),
            "cluster_records": self.num_clusters(),
            "leaf_records": len(self),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"STRGIndex(backgrounds={s['root_records']}, "
            f"clusters={s['cluster_records']}, ogs={s['leaf_records']})"
        )
