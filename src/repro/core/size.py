"""Size accounting — Equations 9 and 10 (Section 5.4, Table 2).

The raw STRG stores every OG plus the background of *every frame*:

    size(STRG) = sum_m size(OG_m) + N * size(BG)            (Eq. 9)

while the STRG-Index stores each OG once, one centroid per cluster and a
single deduplicated BG:

    size(STRG-Index) = sum_m size(OG_m) + sum_k size(OG_clus_k) + size(BG)
                                                              (Eq. 10)

Since N (frames) >> K (clusters), the index is drastically smaller — the
10-15x reduction reported in Table 2.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.index import STRGIndex
from repro.errors import InvalidParameterError
from repro.graph.decomposition import BackgroundGraph
from repro.graph.object_graph import ObjectGraph


def _og_bytes(og) -> int:
    """Footprint of one OG (ObjectGraph or raw value array)."""
    if isinstance(og, ObjectGraph):
        return og.size_bytes()
    return 8 * int(np.asarray(og).size)


def strg_raw_size_bytes(ogs: Sequence, background: BackgroundGraph | int,
                        num_frames: int) -> int:
    """Equation 9: raw STRG footprint.

    ``background`` may be a :class:`BackgroundGraph` or a per-frame BG
    byte count (useful for the analytically modeled long streams of
    Table 2, where frames are never materialized).
    """
    if num_frames < 1:
        raise InvalidParameterError(f"num_frames must be >= 1, got {num_frames}")
    bg_bytes = (
        background.size_bytes()
        if isinstance(background, BackgroundGraph)
        else int(background)
    )
    return sum(_og_bytes(og) for og in ogs) + num_frames * bg_bytes


def index_size_bytes(index: STRGIndex) -> int:
    """Equation 10: STRG-Index footprint, computed by walking the tree."""
    total = 0
    for root_record in index.root:
        if root_record.background is not None:
            total += root_record.background.size_bytes()
        for cluster_record in root_record.cluster_node:
            total += 8 * int(cluster_record.centroid.size)
            for leaf_record in cluster_record.leaf:
                total += _og_bytes(leaf_record.og)
                total += 8  # the key
    return total
