"""The STRG-Index — the paper's primary contribution (Section 5).

A three-level tree:

- **root node** — one record per distinct Background Graph;
- **cluster nodes** — one record per OG cluster, holding the synthesized
  centroid OG;
- **leaf nodes** — the member OGs of one cluster, keyed by
  ``EGED_M(OG_mem, OG_clus)``.

Construction is Algorithm 2 (EM clustering + key computation); maintenance
uses the BIC-driven leaf split of Section 5.3; search is the k-NN walk of
Algorithm 3 with triangle-inequality pruning on the metric leaf keys.
"""

from repro.core.nodes import (
    RootRecord,
    ClusterRecord,
    LeafRecord,
    ClusterNode,
    LeafNode,
)
from repro.core.index import STRGIndex, STRGIndexConfig
from repro.core.size import strg_raw_size_bytes, index_size_bytes

__all__ = [
    "RootRecord",
    "ClusterRecord",
    "LeafRecord",
    "ClusterNode",
    "LeafNode",
    "STRGIndex",
    "STRGIndexConfig",
    "strg_raw_size_bytes",
    "index_size_bytes",
]
