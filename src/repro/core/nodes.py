"""Node and record types of the STRG-Index tree (Section 5.1).

Each level's record layout mirrors the paper's figures:

- root record:    ``(iD_root, BG_r, ptr)``
- cluster record: ``(iD_clus, OG_clus, ptr)``
- leaf record:    ``(Key = EGED_M(OG_mem, OG_clus), OG_mem, ptr)``

Leaf records are kept sorted by key so search can expand outward from the
query's key position and stop at the triangle-inequality bound.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.graph.decomposition import BackgroundGraph
from repro.graph.object_graph import ObjectGraph


@dataclass
class LeafRecord:
    """One indexed OG: its metric key, the OG, and a clip reference.

    ``clip_ref`` stands in for the paper's pointer to "the real video clip
    in a disk" — any application-level handle (path, offset, ...).
    """

    key: float
    og: ObjectGraph
    clip_ref: Any = None


class LeafNode:
    """Sorted container of the member OGs of one cluster."""

    def __init__(self) -> None:
        self._records: list[LeafRecord] = []
        self._keys: list[float] = []

    def insert(self, record: LeafRecord) -> None:
        """Insert keeping key order (binary search)."""
        pos = bisect.bisect_left(self._keys, record.key)
        self._keys.insert(pos, record.key)
        self._records.insert(pos, record)

    def remove(self, og_id: int) -> LeafRecord | None:
        """Remove (and return) the record holding the OG with ``og_id``.

        Returns ``None`` when the leaf does not contain it.
        """
        for pos, record in enumerate(self._records):
            if record.og.og_id == og_id:
                del self._records[pos]
                del self._keys[pos]
                return record
        return None

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LeafRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[LeafRecord]:
        """Records in ascending key order."""
        return self._records

    @property
    def keys(self) -> list[float]:
        """Keys in ascending order (parallel to :attr:`records`)."""
        return self._keys

    def max_key(self) -> float:
        """Largest key (the leaf's covering radius around its centroid)."""
        return self._keys[-1] if self._keys else 0.0

    def object_graphs(self) -> list[ObjectGraph]:
        """The member OGs."""
        return [r.og for r in self._records]


@dataclass
class ClusterRecord:
    """One cluster: its id, synthesized centroid OG and leaf pointer."""

    record_id: int
    centroid: np.ndarray
    leaf: LeafNode = field(default_factory=LeafNode)


class ClusterNode:
    """Mid-level node: the cluster records under one background."""

    def __init__(self) -> None:
        self.records: list[ClusterRecord] = []
        self._next_id = 0

    def add(self, centroid: np.ndarray) -> ClusterRecord:
        """Append a new cluster record with a fresh id."""
        record = ClusterRecord(self._next_id, centroid)
        self._next_id += 1
        self.records.append(record)
        return record

    def remove(self, record: ClusterRecord) -> None:
        """Remove a cluster record (used when a leaf splits)."""
        self.records.remove(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ClusterRecord]:
        return iter(self.records)

    def total_ogs(self) -> int:
        """Number of OGs across all leaves of this cluster node."""
        return sum(len(r.leaf) for r in self.records)


@dataclass
class RootRecord:
    """One background: its id, the BG, and its cluster-node pointer."""

    record_id: int
    background: BackgroundGraph | None
    cluster_node: ClusterNode = field(default_factory=ClusterNode)
