"""K-Harmonic Means over OGs (Hamerly & Elkan), the Fig. 5(c)/6 baseline.

KHM replaces K-Means' hard minimum with the harmonic mean of the distances
to all centroids, yielding soft memberships

    m(c_k | x_j) = d_jk^(-p-2) / sum_l d_jl^(-p-2)

and per-point weights

    w(x_j) = sum_k d_jk^(-p-2) / (sum_k d_jk^(-p))^2 .

As the paper observes (Section 6.2), KHM's soft membership resembles EM's
responsibilities — which is why its clustering quality tracks EM-EGED —
while its update is costlier per iteration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.clustering.base import (
    ClusteringResult,
    distance_matrix_to_centroids,
    kmeanspp_init,
    validate_inputs,
)
from repro.clustering.centroid import weighted_mean_og
from repro.distance.base import Distance
from repro.distance.eged import EGED
from repro.errors import InvalidParameterError
from repro.observability import OBS

_EPS = 1e-8


@dataclass
class KHMConfig:
    """KHM hyperparameters (``p`` is the harmonic exponent, >= 2)."""

    n_clusters: int = 8
    max_iterations: int = 30
    p: float = 3.5
    tolerance: float = 1e-6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise InvalidParameterError(
                f"n_clusters must be >= 1, got {self.n_clusters}"
            )
        if self.p < 2:
            raise InvalidParameterError(f"p must be >= 2, got {self.p}")


class KHMClustering:
    """K-Harmonic Means over OGs with a pluggable distance."""

    def __init__(self, config: KHMConfig | None = None,
                 distance: Distance | None = None):
        self.config = config or KHMConfig()
        self.distance = distance or EGED()

    def _performance(self, dist: np.ndarray) -> float:
        """KHM objective: sum over points of K / sum_k d^-p."""
        k = dist.shape[1]
        inv = np.maximum(dist, _EPS) ** (-self.config.p)
        return float(np.sum(k / inv.sum(axis=1)))

    def fit(self, ogs: Sequence) -> ClusteringResult:
        """Run KHM to convergence of the performance function."""
        with OBS.span("clustering.khm.fit", k=self.config.n_clusters) as sp:
            result = self._fit(ogs)
            sp.set(iterations=result.n_iterations, converged=result.converged)
            return result

    def _fit(self, ogs: Sequence) -> ClusteringResult:
        cfg = self.config
        series = validate_inputs(ogs, cfg.n_clusters)
        rng = np.random.default_rng(cfg.seed)
        k = cfg.n_clusters
        m = len(series)

        centroids = kmeanspp_init(series, k, self.distance, rng)
        dist = distance_matrix_to_centroids(self.distance, series, centroids)
        perf = self._performance(dist)
        memberships = np.full((m, k), 1.0 / k)
        iteration_seconds: list[float] = []
        converged = False
        iteration = 0

        for iteration in range(1, cfg.max_iterations + 1):
            started = time.perf_counter()
            OBS.count("khm.iterations")
            d = np.maximum(dist, _EPS)
            inv_p2 = d ** (-cfg.p - 2.0)
            inv_p = d ** (-cfg.p)
            memberships = inv_p2 / inv_p2.sum(axis=1, keepdims=True)
            point_weights = inv_p2.sum(axis=1) / inv_p.sum(axis=1) ** 2
            for c in range(k):
                weights = memberships[:, c] * point_weights
                if weights.sum() <= _EPS:
                    worst = int(np.argmax(dist.min(axis=1)))
                    centroids[c] = series[worst].copy()
                else:
                    centroids[c] = weighted_mean_og(series, weights)
            dist = distance_matrix_to_centroids(self.distance, series, centroids)
            new_perf = self._performance(dist)
            iteration_seconds.append(time.perf_counter() - started)
            if abs(perf - new_perf) < cfg.tolerance * max(perf, 1.0):
                perf = new_perf
                converged = True
                break
            perf = new_perf

        assignments = np.argmax(memberships, axis=1)
        return ClusteringResult(
            assignments=assignments,
            centroids=centroids,
            responsibilities=memberships,
            weights=np.full(k, 1.0 / k),
            sigmas=np.zeros(k),
            log_likelihood=float("nan"),
            n_iterations=iteration,
            iteration_seconds=iteration_seconds,
            converged=converged,
        )
