"""EM clustering with EGED — Section 4.1 (Equations 3-7).

The finite Gaussian mixture over OGs replaces the Mahalanobis term with the
EGED to the component mean, collapsing the density to one dimension
(Equation 3):

    p(Y_j | Theta) = sum_k  w_k / (sqrt(2 pi) sigma_k)
                            * exp(-EGED(Y_j, mu_k)^2 / (2 sigma_k^2))

which sidesteps the singular-covariance problem of variable-length OGs and
reduces the per-iteration complexity from O(d^2 K M) to O(K M).

Stabilization
-------------
A textbook EM on this model is unstable when K is large and clusters hold
few OGs: centroids are synthesized in *trajectory space* while densities
live in *distance space*, so small cross-cluster responsibilities drag
every centroid toward the global mean, sigma estimates absorb the huge
between-cluster distances, and fat components snowball until everything
merges.  The implementation therefore hardens the classical recipe
(all switchable via :class:`EMConfig`):

- a short Lloyd warm start after k-means++ seeding;
- a CEM-style M-step: each OG contributes its responsibility only to its
  maximum-posterior component (Celeux & Govaert's classification EM);
- per-component sigma clipped into ``[0.25, 1] x`` a pooled scale that is
  monotone non-increasing across iterations;
- mixture weights are estimated (Eq. 6) and reported, but by default do
  not feed back into the E-step posterior, cutting the rich-get-richer
  loop between component mass and component basin.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.clustering.base import (
    ClusteringResult,
    distance_matrix_to_centroids,
    kmeanspp_init,
    validate_inputs,
)
from repro.clustering.centroid import weighted_mean_og
from repro.distance.base import Distance
from repro.distance.eged import EGED
from repro.errors import ClusteringError, InvalidParameterError
from repro.observability import OBS

_LOG_2PI = float(np.log(2.0 * np.pi))
_MIN_SIGMA = 1e-3
_MIN_WEIGHT = 1e-8
_MIN_MASS = 1e-9


@dataclass
class EMConfig:
    """EM hyperparameters.

    ``weight_tolerance`` is the convergence threshold on the mixture
    weights (the paper stops "when w_k is converged for all k");
    ``warm_start_iterations`` Lloyd steps precede EM;
    ``weights_in_posterior`` re-enables the textbook E-step (useful for
    ablations; unstable for large K, see the module docstring).
    """

    n_clusters: int = 8
    max_iterations: int = 30
    weight_tolerance: float = 1e-4
    warm_start_iterations: int = 2
    weights_in_posterior: bool = False
    sigma_band: float = 0.25
    n_init: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise InvalidParameterError(
                f"n_clusters must be >= 1, got {self.n_clusters}"
            )
        if self.max_iterations < 1:
            raise InvalidParameterError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if self.warm_start_iterations < 0:
            raise InvalidParameterError(
                "warm_start_iterations must be >= 0, "
                f"got {self.warm_start_iterations}"
            )
        if not 0.0 < self.sigma_band <= 1.0:
            raise InvalidParameterError(
                f"sigma_band must be in (0, 1], got {self.sigma_band}"
            )
        if self.n_init < 1:
            raise InvalidParameterError(
                f"n_init must be >= 1, got {self.n_init}"
            )


class EMClustering:
    """EM over OGs with a pluggable distance (EGED by default)."""

    def __init__(self, config: EMConfig | None = None,
                 distance: Distance | None = None):
        self.config = config or EMConfig()
        self.distance = distance or EGED()

    # -- model math ---------------------------------------------------------

    @staticmethod
    def _log_density(dist: np.ndarray, sigmas: np.ndarray) -> np.ndarray:
        """Per-component log densities of Eq. 3 for a distance matrix."""
        return (
            -0.5 * _LOG_2PI
            - np.log(sigmas)[None, :]
            - 0.5 * (dist / sigmas[None, :]) ** 2
        )

    @staticmethod
    def _log_likelihood(log_dens: np.ndarray, weights: np.ndarray) -> float:
        """Total data log-likelihood (Eq. 4), computed stably."""
        joint = log_dens + np.log(weights)[None, :]
        mx = joint.max(axis=1, keepdims=True)
        return float(np.sum(mx.squeeze(1) + np.log(
            np.sum(np.exp(joint - mx), axis=1)
        )))

    @staticmethod
    def _responsibilities(log_dens: np.ndarray,
                          weights: np.ndarray) -> np.ndarray:
        """E-step posteriors h_jk (Eq. 5), normalized in the log domain."""
        joint = log_dens + np.log(weights)[None, :]
        mx = joint.max(axis=1, keepdims=True)
        expd = np.exp(joint - mx)
        return expd / expd.sum(axis=1, keepdims=True)

    # -- initialization ------------------------------------------------------

    def _warm_start(self, series: list[np.ndarray], k: int,
                    rng: np.random.Generator
                    ) -> tuple[list[np.ndarray], np.ndarray]:
        """k-means++ seeding followed by a few Lloyd iterations.

        Returns the warmed centroids and the point-to-centroid distance
        matrix.  Empty clusters steal the worst-fit point.
        """
        centroids = kmeanspp_init(series, k, self.distance, rng)
        dist = distance_matrix_to_centroids(self.distance, series, centroids)
        m = len(series)
        for _ in range(self.config.warm_start_iterations):
            hard = np.argmin(dist, axis=1)
            for c in range(k):
                members = np.where(hard == c)[0]
                if members.size == 0:
                    worst = int(np.argmax(dist[np.arange(m), hard]))
                    hard[worst] = c
                    members = np.array([worst])
                centroids[c] = weighted_mean_og([series[i] for i in members])
            dist = distance_matrix_to_centroids(self.distance, series, centroids)
        return centroids, dist

    @staticmethod
    def _reseed_empty(centroids: list[np.ndarray], series: list[np.ndarray],
                      dist: np.ndarray, empty: np.ndarray) -> None:
        """Reseed empty components at *distinct* worst-fit OGs."""
        order = np.argsort(-dist.min(axis=1))
        taken = 0
        for c in np.where(empty)[0]:
            idx = int(order[min(taken, len(order) - 1)])
            centroids[c] = series[idx].copy()
            taken += 1

    # -- fitting --------------------------------------------------------------

    def fit(self, ogs: Sequence) -> ClusteringResult:
        """Run EM to convergence and return the clustering.

        With ``n_init > 1`` the whole procedure restarts from different
        seeds and the run with the best classification log-likelihood
        wins — k-means++ can seed on outlier trajectories, and restarts
        are the standard remedy.
        """
        cfg = self.config
        best: ClusteringResult | None = None
        for restart in range(cfg.n_init):
            with OBS.span("clustering.em.fit", k=cfg.n_clusters,
                          restart=restart) as sp:
                result = self._fit_once(ogs, cfg.seed + restart)
                sp.set(iterations=result.n_iterations,
                       converged=result.converged)
            if (best is None or result.classification_log_likelihood
                    > best.classification_log_likelihood):
                best = result
        assert best is not None
        return best

    def _fit_once(self, ogs: Sequence, seed: int) -> ClusteringResult:
        """One EM run from a single seed."""
        cfg = self.config
        series = validate_inputs(ogs, cfg.n_clusters)
        rng = np.random.default_rng(seed)
        k = cfg.n_clusters
        m = len(series)

        centroids, dist = self._warm_start(series, k, rng)
        weights = np.full(k, 1.0 / k)
        posterior_weights = np.full(k, 1.0 / k)
        sigma_cap = max(float(np.sqrt(np.mean(dist.min(axis=1) ** 2))),
                        _MIN_SIGMA)
        sigmas = np.full(k, sigma_cap)

        log_lik = -np.inf
        responsibilities = np.full((m, k), 1.0 / k)
        iteration_seconds: list[float] = []
        converged = False
        iteration = 0
        prev_winner = np.full(m, -1, dtype=np.int64)
        rows = np.arange(m)

        for iteration in range(1, cfg.max_iterations + 1):
            started = time.perf_counter()
            OBS.count("em.iterations")
            # E-step (Eq. 5).
            log_dens = self._log_density(dist, sigmas)
            responsibilities = self._responsibilities(log_dens, posterior_weights)
            winner = np.argmax(responsibilities, axis=1)
            # Mixture weights (Eq. 6) — always estimated and reported.
            mass = responsibilities.sum(axis=0)
            new_weights = np.maximum(mass / m, _MIN_WEIGHT)
            new_weights /= new_weights.sum()
            if cfg.weights_in_posterior:
                posterior_weights = new_weights
            # M-step: winner-restricted (CEM) centroid and sigma updates.
            restricted = np.zeros_like(responsibilities)
            restricted[rows, winner] = responsibilities[rows, winner]
            restricted_mass = restricted.sum(axis=0)
            empty = restricted_mass < _MIN_MASS
            for c in np.where(~empty)[0]:
                centroids[c] = weighted_mean_og(series, restricted[:, c])
            if np.any(empty):
                self._reseed_empty(centroids, series, dist, empty)
            dist = distance_matrix_to_centroids(self.distance, series, centroids)
            pooled = float(np.sqrt(
                np.sum(restricted * dist ** 2)
                / max(restricted.sum(), _MIN_MASS)
            ))
            sigma_cap = min(sigma_cap, max(pooled, _MIN_SIGMA))
            per_component = np.sqrt(
                np.sum(restricted * dist ** 2, axis=0)
                / np.maximum(restricted_mass, _MIN_MASS)
            )
            per_component[empty] = sigma_cap
            sigmas = np.clip(per_component, cfg.sigma_band * sigma_cap,
                             sigma_cap)

            weight_shift = float(np.max(np.abs(new_weights - weights)))
            weights = new_weights
            log_dens = self._log_density(dist, sigmas)
            log_lik = self._log_likelihood(log_dens, weights)
            iteration_seconds.append(time.perf_counter() - started)
            if (np.array_equal(winner, prev_winner)
                    or weight_shift < cfg.weight_tolerance):
                converged = True
                break
            prev_winner = winner

        if not np.isfinite(log_lik):
            raise ClusteringError("EM produced a non-finite log-likelihood")

        # Final assignment (Eq. 7).
        log_dens = self._log_density(dist, sigmas)
        responsibilities = self._responsibilities(log_dens, posterior_weights)
        assignments = np.argmax(responsibilities, axis=1)
        classification_ll = float(
            np.sum(log_dens[np.arange(m), assignments])
        )
        return ClusteringResult(
            assignments=assignments,
            centroids=centroids,
            responsibilities=responsibilities,
            weights=weights,
            sigmas=sigmas,
            log_likelihood=log_lik,
            n_iterations=iteration,
            iteration_seconds=iteration_seconds,
            converged=converged,
            classification_log_likelihood=classification_ll,
        )

    def predict(self, result: ClusteringResult, og) -> int:
        """Most probable component for a new OG (Eq. 7)."""
        from repro.distance.base import as_series
        from repro.distance.cache import cached_one_vs_many

        series = as_series(og)
        dist = cached_one_vs_many(self.distance, series, result.centroids)
        log_dens = self._log_density(dist[None, :], result.sigmas)
        post = self._responsibilities(log_dens, result.weights)
        return int(np.argmax(post[0]))
