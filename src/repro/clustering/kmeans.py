"""K-Means generalized to arbitrary sequence distances (Fig. 5(b)/6 baseline).

Lloyd's algorithm with a pluggable distance: assignment picks the nearest
centroid under the distance; the update synthesizes each centroid by
(hard-) weighted OG averaging, the same representative construction EM
uses, so the comparison isolates the membership model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.clustering.base import (
    ClusteringResult,
    distance_matrix_to_centroids,
    kmeanspp_init,
    validate_inputs,
)
from repro.clustering.centroid import weighted_mean_og
from repro.distance.base import Distance
from repro.distance.eged import EGED
from repro.errors import InvalidParameterError
from repro.observability import OBS


@dataclass
class KMeansConfig:
    """K-Means hyperparameters."""

    n_clusters: int = 8
    max_iterations: int = 30
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise InvalidParameterError(
                f"n_clusters must be >= 1, got {self.n_clusters}"
            )
        if self.max_iterations < 1:
            raise InvalidParameterError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )


class KMeansClustering:
    """Lloyd-style K-Means over OGs."""

    def __init__(self, config: KMeansConfig | None = None,
                 distance: Distance | None = None):
        self.config = config or KMeansConfig()
        self.distance = distance or EGED()

    def fit(self, ogs: Sequence) -> ClusteringResult:
        """Run K-Means to a fixed point (or the iteration cap)."""
        with OBS.span("clustering.kmeans.fit",
                      k=self.config.n_clusters) as sp:
            result = self._fit(ogs)
            sp.set(iterations=result.n_iterations, converged=result.converged)
            return result

    def _fit(self, ogs: Sequence) -> ClusteringResult:
        cfg = self.config
        series = validate_inputs(ogs, cfg.n_clusters)
        rng = np.random.default_rng(cfg.seed)
        k = cfg.n_clusters
        m = len(series)

        centroids = kmeanspp_init(series, k, self.distance, rng)
        assignments = np.full(m, -1, dtype=np.int64)
        iteration_seconds: list[float] = []
        converged = False
        iteration = 0
        dist = distance_matrix_to_centroids(self.distance, series, centroids)

        for iteration in range(1, cfg.max_iterations + 1):
            started = time.perf_counter()
            OBS.count("kmeans.iterations")
            new_assignments = np.argmin(dist, axis=1)
            for c in range(k):
                members = np.where(new_assignments == c)[0]
                if members.size == 0:
                    # Empty cluster: steal the point farthest from its centroid.
                    worst = int(np.argmax(dist[np.arange(m), new_assignments]))
                    new_assignments[worst] = c
                    members = np.array([worst])
                centroids[c] = weighted_mean_og([series[i] for i in members])
            dist = distance_matrix_to_centroids(self.distance, series, centroids)
            iteration_seconds.append(time.perf_counter() - started)
            if np.array_equal(new_assignments, assignments):
                converged = True
                assignments = new_assignments
                break
            assignments = new_assignments

        responsibilities = np.zeros((m, k), dtype=np.float64)
        responsibilities[np.arange(m), assignments] = 1.0
        return ClusteringResult(
            assignments=assignments,
            centroids=centroids,
            responsibilities=responsibilities,
            weights=np.full(k, 1.0 / k),
            sigmas=np.zeros(k),
            log_likelihood=float("nan"),
            n_iterations=iteration,
            iteration_seconds=iteration_seconds,
            converged=converged,
        )
