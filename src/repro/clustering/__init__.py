"""Clustering of Object Graphs — Section 4 plus the baselines of Section 6.2.

- :mod:`repro.clustering.centroid` — centroid-OG synthesis (length-aware
  weighted averaging), used for cluster representatives (Section 5.2).
- :mod:`repro.clustering.em` — EM with the one-dimensional Gaussian
  mixture over EGED distances (Equations 3-7).
- :mod:`repro.clustering.kmeans` — K-Means generalized to arbitrary
  sequence distances.
- :mod:`repro.clustering.khm` — K-Harmonic Means (Hamerly & Elkan).
- :mod:`repro.clustering.bic` — Bayesian Information Criterion model
  selection (Equation 8, Section 4.2).
- :mod:`repro.clustering.evaluation` — clustering error rate (Eq. 11),
  distortion, and precision/recall for retrieval results.
"""

from repro.clustering.centroid import weighted_mean_og, synthesize_centroid
from repro.clustering.base import ClusteringResult
from repro.clustering.em import EMClustering, EMConfig
from repro.clustering.kmeans import KMeansClustering, KMeansConfig
from repro.clustering.khm import KHMClustering, KHMConfig
from repro.clustering.bic import bic_score, bic_curve, select_num_clusters
from repro.clustering.xmeans import XMeansClustering, XMeansConfig
from repro.clustering.evaluation import (
    clustering_error_rate,
    distortion,
    precision_recall,
)
from repro.clustering.silhouette import silhouette_samples, silhouette_score

__all__ = [
    "weighted_mean_og",
    "synthesize_centroid",
    "ClusteringResult",
    "EMClustering",
    "EMConfig",
    "KMeansClustering",
    "KMeansConfig",
    "KHMClustering",
    "KHMConfig",
    "bic_score",
    "bic_curve",
    "select_num_clusters",
    "XMeansClustering",
    "XMeansConfig",
    "clustering_error_rate",
    "distortion",
    "precision_recall",
    "silhouette_samples",
    "silhouette_score",
]
