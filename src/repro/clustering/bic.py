"""Bayesian Information Criterion model selection — Section 4.2, Eq. 8.

    BIC(M_K) = l_K(Y) - eta_{M_K} * log(M)

with ``eta_{M_K} = (K - 1) + K d (d + 3) / 2`` independent parameters and
``d = 1`` because the EGED mixture is one-dimensional, giving
``eta = 3K - 1``.  The optimal cluster count maximizes the BIC — this
drives both Figure 8 and the STRG-Index leaf split test (Section 5.3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.clustering.base import ClusteringResult
from repro.clustering.em import EMClustering, EMConfig
from repro.distance.base import Distance
from repro.errors import ClusteringError, InvalidParameterError


def num_free_parameters(k: int, d: int = 1) -> int:
    """``eta_{M_K}`` of Eq. 8 for a K-component, d-dimensional mixture."""
    if k < 1:
        raise InvalidParameterError(f"K must be >= 1, got {k}")
    return (k - 1) + k * d * (d + 3) // 2


def bic_score(result: ClusteringResult, num_items: int, d: int = 1,
              likelihood: str = "classification") -> float:
    """BIC of a fitted EM model (Eq. 8); higher is better.

    ``likelihood`` selects the fit term: ``"classification"`` (default)
    uses the winning-component log-likelihood — the ICL-style score that
    matches this package's stabilized (CEM) E/M updates and produces the
    clear peaks of Figure 8; ``"mixture"`` uses the full mixture
    log-likelihood of Eq. 4 (whose mixture-entropy term ``-M H(w)`` grows
    with K and flattens the curve on 1-D EGED densities).
    """
    if num_items < 1:
        raise InvalidParameterError(f"num_items must be >= 1, got {num_items}")
    if likelihood == "classification":
        fit = result.classification_log_likelihood
    elif likelihood == "mixture":
        fit = result.log_likelihood
    else:
        raise InvalidParameterError(
            f"likelihood must be 'classification' or 'mixture', "
            f"got {likelihood!r}"
        )
    if not np.isfinite(fit):
        raise ClusteringError(
            "BIC requires a probabilistic model with a log-likelihood "
            "(fit with EMClustering)"
        )
    eta = num_free_parameters(result.num_clusters, d)
    return float(fit - eta * np.log(num_items))


def bic_curve(ogs: Sequence, k_values: Sequence[int],
              distance: Distance | None = None, seed: int = 0,
              max_iterations: int = 25, n_init: int = 1,
              likelihood: str = "classification") -> list[float]:
    """BIC value for each candidate ``K`` (the Figure 8 curves)."""
    scores: list[float] = []
    for k in k_values:
        em = EMClustering(
            EMConfig(n_clusters=k, max_iterations=max_iterations, seed=seed,
                     n_init=n_init),
            distance=distance,
        )
        result = em.fit(ogs)
        scores.append(bic_score(result, len(ogs), likelihood=likelihood))
    return scores


def select_num_clusters(ogs: Sequence, k_min: int = 1, k_max: int = 15,
                        distance: Distance | None = None, seed: int = 0,
                        max_iterations: int = 25, n_init: int = 1,
                        likelihood: str = "classification"
                        ) -> tuple[int, list[float]]:
    """Optimal ``K`` by maximizing the BIC over ``[k_min, k_max]``.

    Returns ``(best_k, bic_values)`` where ``bic_values[i]`` corresponds to
    ``K = k_min + i``.
    """
    if not 1 <= k_min <= k_max:
        raise InvalidParameterError(
            f"need 1 <= k_min <= k_max, got [{k_min}, {k_max}]"
        )
    k_values = list(range(k_min, min(k_max, len(ogs)) + 1))
    scores = bic_curve(ogs, k_values, distance, seed, max_iterations,
                       n_init, likelihood)
    best = int(np.argmax(scores))
    return k_values[best], scores
