"""X-means-style cluster-count discovery (Pelleg & Moore, cited in
Section 4.2).

An alternative to the global BIC sweep of
:func:`repro.clustering.bic.select_num_clusters`: start from a small K
and recursively *split* clusters whose local 2-component BIC beats their
1-component BIC — the same test the STRG-Index leaf split uses (Section
5.3), applied during clustering instead of maintenance.  Much cheaper
than sweeping every K when the optimal K is large.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.clustering.base import ClusteringResult
from repro.clustering.bic import bic_score
from repro.clustering.em import EMClustering, EMConfig
from repro.distance.base import Distance
from repro.errors import InvalidParameterError


@dataclass
class XMeansConfig:
    """X-means parameters: starting/maximum K and the inner EM budget."""

    k_min: int = 2
    k_max: int = 16
    max_iterations: int = 15
    min_cluster_size: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.k_min <= self.k_max:
            raise InvalidParameterError(
                f"need 1 <= k_min <= k_max, got [{self.k_min}, {self.k_max}]"
            )
        if self.min_cluster_size < 2:
            raise InvalidParameterError(
                f"min_cluster_size must be >= 2, got {self.min_cluster_size}"
            )


class XMeansClustering:
    """Recursive EM splitting with local BIC improvement tests."""

    def __init__(self, config: XMeansConfig | None = None,
                 distance: Distance | None = None):
        self.config = config or XMeansConfig()
        self.distance = distance

    def _fit_em(self, ogs: Sequence, k: int, seed: int) -> ClusteringResult:
        em = EMClustering(
            EMConfig(n_clusters=k, max_iterations=self.config.max_iterations,
                     seed=seed),
            distance=self.distance,
        )
        return em.fit(ogs)

    def _should_split(self, members: list, seed: int) -> ClusteringResult | None:
        """Local improve-structure test: return the 2-way split when its
        BIC beats the single-component BIC, else ``None``."""
        if len(members) < 2 * self.config.min_cluster_size:
            return None
        one = self._fit_em(members, 1, seed)
        two = self._fit_em(members, 2, seed)
        if len(np.unique(two.assignments)) < 2:
            return None
        if bic_score(two, len(members)) <= bic_score(one, len(members)):
            return None
        return two

    def fit(self, ogs: Sequence) -> ClusteringResult:
        """Cluster ``ogs``, growing K from ``k_min`` by accepted splits."""
        cfg = self.config
        ogs = list(ogs)
        result = self._fit_em(ogs, min(cfg.k_min, len(ogs)), cfg.seed)
        # groups: list of member-index arrays (global indices into ogs).
        groups = [result.cluster_members(c).tolist()
                  for c in range(result.num_clusters)]
        groups = [g for g in groups if g]
        improved = True
        round_seed = cfg.seed
        while improved and len(groups) < cfg.k_max:
            improved = False
            next_groups: list[list[int]] = []
            current_k = len(groups)
            for group in groups:
                split = None
                if current_k < cfg.k_max:
                    members = [ogs[i] for i in group]
                    split = self._should_split(members, round_seed)
                if split is None:
                    next_groups.append(group)
                else:
                    improved = True
                    current_k += 1
                    for c in range(2):
                        sub = [group[int(j)] for j in split.cluster_members(c)]
                        if sub:
                            next_groups.append(sub)
                round_seed += 1
            groups = next_groups
        # Final refinement at the discovered K.
        final = self._fit_em(ogs, len(groups), cfg.seed)
        return final
