"""Silhouette analysis for OG clusterings.

A distance-agnostic internal quality measure complementing the error rate
(which needs ground truth) and the BIC (which needs the EM likelihood):
``s(j) = (b_j - a_j) / max(a_j, b_j)`` with ``a_j`` the mean distance to
the point's own cluster and ``b_j`` the mean distance to the nearest
other cluster.  Useful for diagnosing the cluster structure behind an
STRG-Index on unlabeled production data.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distance.base import Distance, as_series, pairwise_matrix
from repro.distance.eged import EGED
from repro.errors import InvalidParameterError


def silhouette_samples(ogs: Sequence, assignments: Sequence[int],
                       distance: Distance | None = None) -> np.ndarray:
    """Per-OG silhouette values in ``[-1, 1]``.

    Singleton clusters get silhouette 0 by convention.
    """
    labels = np.asarray(assignments)
    if labels.shape[0] != len(ogs):
        raise InvalidParameterError(
            f"{len(ogs)} OGs but {labels.shape[0]} assignments"
        )
    if labels.shape[0] < 2:
        raise InvalidParameterError("need at least two OGs")
    unique = np.unique(labels)
    if unique.shape[0] < 2:
        raise InvalidParameterError("need at least two clusters")
    distance = distance or EGED()
    series = [as_series(og) for og in ogs]
    dist = pairwise_matrix(distance, series)
    scores = np.zeros(len(ogs), dtype=np.float64)
    for j in range(len(ogs)):
        own = labels == labels[j]
        own_size = int(own.sum())
        if own_size <= 1:
            scores[j] = 0.0
            continue
        a = dist[j, own].sum() / (own_size - 1)  # excludes self (d=0)
        b = min(
            dist[j, labels == other].mean()
            for other in unique if other != labels[j]
        )
        denom = max(a, b)
        scores[j] = 0.0 if denom == 0 else (b - a) / denom
    return scores


def silhouette_score(ogs: Sequence, assignments: Sequence[int],
                     distance: Distance | None = None) -> float:
    """Mean silhouette over all OGs."""
    return float(silhouette_samples(ogs, assignments, distance).mean())
