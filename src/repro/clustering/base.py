"""Shared clustering result container and helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.distance.base import Distance, as_series
from repro.distance.batch import supports_batch
from repro.distance.cache import cached_one_vs_many
from repro.errors import ClusteringError, InvalidParameterError


@dataclass
class ClusteringResult:
    """Output of any clustering algorithm in this package.

    Attributes
    ----------
    assignments:
        ``(M,)`` hard cluster index per input OG.
    centroids:
        One representative value series per cluster, each ``(n, d)``.
    responsibilities:
        ``(M, K)`` soft memberships (hard one-hot for K-Means).
    weights:
        ``(K,)`` mixture weights (uniform for non-probabilistic methods).
    sigmas:
        ``(K,)`` per-component scale (EM only; zeros otherwise).
    log_likelihood:
        Final data log-likelihood (EM; ``nan`` otherwise).
    classification_log_likelihood:
        Log-likelihood under each point's winning component only (no
        mixture-weight term) — the CEM/ICL-style score used for model
        selection (EM; ``nan`` otherwise).
    n_iterations:
        Iterations actually run.
    iteration_seconds:
        Wall-clock duration of each iteration (drives Figure 6(b)).
    converged:
        Whether the stopping criterion was met before the iteration cap.
    """

    assignments: np.ndarray
    centroids: list[np.ndarray]
    responsibilities: np.ndarray
    weights: np.ndarray
    sigmas: np.ndarray
    log_likelihood: float
    n_iterations: int
    iteration_seconds: list[float] = field(default_factory=list)
    converged: bool = False
    classification_log_likelihood: float = float("nan")

    @property
    def num_clusters(self) -> int:
        """Number of clusters ``K``."""
        return len(self.centroids)

    def cluster_members(self, k: int) -> np.ndarray:
        """Indices of OGs assigned to cluster ``k``."""
        return np.where(self.assignments == k)[0]

    def total_seconds(self) -> float:
        """Total clustering wall-clock time."""
        return float(sum(self.iteration_seconds))


def validate_inputs(ogs: Sequence, k: int) -> list[np.ndarray]:
    """Normalize the input OGs to value series and validate ``K``."""
    if k < 1:
        raise InvalidParameterError(f"K must be >= 1, got {k}")
    if len(ogs) < k:
        raise ClusteringError(
            f"cannot form {k} clusters from {len(ogs)} OGs"
        )
    return [as_series(og) for og in ogs]


def distances_to_centroid(distance: Distance, series: list[np.ndarray],
                          centroid: np.ndarray) -> np.ndarray:
    """``(M,)`` distances from every OG to one centroid.

    Batch-capable distances (EGED/ERP/DTW/LCS — all symmetric) run one
    vectorized DP sweep through the memo cache, which is what makes the
    E-step of EM an O(K) sequence of NumPy kernels instead of O(K M)
    Python calls; other distances keep the per-pair ``(series, centroid)``
    call order so asymmetric user distances behave as before.
    """
    if supports_batch(distance):
        return cached_one_vs_many(distance, centroid, series)
    return np.array([distance.compute(s, centroid) for s in series],
                    dtype=np.float64)


def distance_matrix_to_centroids(distance: Distance, series: list[np.ndarray],
                                 centroids: list[np.ndarray]) -> np.ndarray:
    """``(M, K)`` matrix of distances from every OG to every centroid."""
    out = np.empty((len(series), len(centroids)), dtype=np.float64)
    for k, c in enumerate(centroids):
        out[:, k] = distances_to_centroid(distance, series, c)
    return out


def kmeanspp_init(series: list[np.ndarray], k: int, distance: Distance,
                  rng: np.random.Generator) -> list[np.ndarray]:
    """k-means++ seeding: spread initial centroids apart.

    Gives every algorithm (EM, KM, KHM) the same competitive start, so the
    Figure 5/6 comparisons measure the update rules, not the seeding.
    Because every seed centroid is a copy of an actual input series,
    these distances are OG-vs-OG pairs that the memo cache reuses across
    BIC's K-sweep and ``n_init`` restarts.
    """
    first = int(rng.integers(len(series)))
    centroids = [series[first].copy()]
    closest = distances_to_centroid(distance, series, centroids[0])
    for _ in range(1, k):
        weights = closest ** 2
        total = weights.sum()
        if total <= 0:
            idx = int(rng.integers(len(series)))
        else:
            idx = int(rng.choice(len(series), p=weights / total))
        centroids.append(series[idx].copy())
        new_d = distances_to_centroid(distance, series, centroids[-1])
        closest = np.minimum(closest, new_d)
    return centroids
