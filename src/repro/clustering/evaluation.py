"""Clustering and retrieval quality metrics for the evaluation section.

- :func:`clustering_error_rate` — Equation 11, with the cluster-to-class
  correspondence chosen by optimal (Hungarian) matching.
- :func:`distortion` — Figure 6(c)'s metric: summed distance between
  detected and true centroids (in pixels).
- :func:`precision_recall` — Figure 7(c)'s retrieval accuracy, where a
  result is relevant when it shares the query's cluster membership.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.distance.base import Distance, as_series
from repro.distance.eged import EGED
from repro.errors import InvalidParameterError


def _confusion(labels_true: np.ndarray, labels_pred: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Contingency table between predicted clusters and true classes."""
    true_ids = np.unique(labels_true)
    pred_ids = np.unique(labels_pred)
    table = np.zeros((len(pred_ids), len(true_ids)), dtype=np.int64)
    true_pos = {v: i for i, v in enumerate(true_ids)}
    pred_pos = {v: i for i, v in enumerate(pred_ids)}
    for t, p in zip(labels_true, labels_pred):
        table[pred_pos[p], true_pos[t]] += 1
    return table, pred_ids, true_ids


def clustering_error_rate(labels_true: Sequence[int],
                          labels_pred: Sequence[int]) -> float:
    """Clustering error rate (Eq. 11), in percent.

    "Correctly clustered" OGs are counted under the cluster -> class
    correspondence that maximizes agreement (optimal one-to-one matching
    via the Hungarian algorithm).
    """
    lt = np.asarray(labels_true)
    lp = np.asarray(labels_pred)
    if lt.shape != lp.shape:
        raise InvalidParameterError(
            f"label arrays differ in shape: {lt.shape} vs {lp.shape}"
        )
    if lt.size == 0:
        raise InvalidParameterError("label arrays are empty")
    table, _, _ = _confusion(lt, lp)
    rows, cols = linear_sum_assignment(-table)
    correct = int(table[rows, cols].sum())
    return (1.0 - correct / lt.size) * 100.0


def distortion(true_centroids: Sequence, found_centroids: Sequence,
               distance: Distance | None = None) -> float:
    """Sum of distances between detected and true centroids (Fig. 6(c)).

    Centroids are matched one-to-one (Hungarian) before summing, so the
    metric does not depend on cluster numbering.  Unmatched centroids
    (when counts differ) are ignored, as the paper compares equal counts.
    """
    if len(true_centroids) == 0 or len(found_centroids) == 0:
        raise InvalidParameterError("centroid lists must be non-empty")
    distance = distance or EGED()
    cost = np.empty((len(found_centroids), len(true_centroids)))
    for i, f in enumerate(found_centroids):
        fs = as_series(f)
        for j, t in enumerate(true_centroids):
            cost[i, j] = distance.compute(fs, as_series(t))
    rows, cols = linear_sum_assignment(cost)
    return float(cost[rows, cols].sum())


def precision_recall(retrieved: Sequence[int], relevant: Sequence[int]
                     ) -> tuple[float, float]:
    """Precision and recall of a retrieval result.

    ``retrieved`` are the ids returned by the index; ``relevant`` the ids
    of all database items sharing the query's cluster membership.
    """
    retrieved_set = set(retrieved)
    relevant_set = set(relevant)
    if not retrieved_set:
        return 0.0, 0.0 if relevant_set else 1.0
    hits = len(retrieved_set & relevant_set)
    precision = hits / len(retrieved_set)
    recall = hits / len(relevant_set) if relevant_set else 1.0
    return precision, recall
