"""Centroid Object Graph synthesis.

Clusters of variable-length OGs need a representative "centroid OG"
(Section 5.2's ``OG_clus``).  Coordinate-wise averaging is undefined across
lengths, so members are first linearly resampled to a common target length
(the weighted median member length) and then averaged with the supplied
weights — a fast approximation of the Frechet mean under EGED that is
stable inside EM/KM/KHM update loops.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distance.base import as_series, resample_series
from repro.errors import EmptySequenceError, InvalidParameterError


def _weighted_median_length(lengths: np.ndarray, weights: np.ndarray) -> int:
    """Weighted median of member lengths (>= 1)."""
    order = np.argsort(lengths)
    sorted_lengths = lengths[order]
    cum = np.cumsum(weights[order])
    half = cum[-1] / 2.0
    idx = int(np.searchsorted(cum, half))
    idx = min(idx, len(sorted_lengths) - 1)
    return max(int(sorted_lengths[idx]), 1)


def weighted_mean_og(series: Sequence[np.ndarray],
                     weights: Sequence[float] | np.ndarray | None = None,
                     length: int | None = None) -> np.ndarray:
    """Weighted mean value series of a set of OGs.

    Parameters
    ----------
    series:
        Member value series (anything :func:`as_series` accepts).
    weights:
        Non-negative member weights (EM responsibilities); default uniform.
    length:
        Target length; defaults to the weighted median member length.

    Returns
    -------
    numpy.ndarray
        The ``(length, d)`` centroid series.
    """
    if len(series) == 0:
        raise EmptySequenceError("cannot average zero OGs")
    arrays = [as_series(s) for s in series]
    if weights is None:
        w = np.ones(len(arrays), dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape[0] != len(arrays):
            raise InvalidParameterError(
                f"{len(arrays)} series but {w.shape[0]} weights"
            )
        if np.any(w < 0):
            raise InvalidParameterError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        w = np.ones(len(arrays), dtype=np.float64)
        total = w.sum()
    lengths = np.array([a.shape[0] for a in arrays])
    if length is None:
        length = _weighted_median_length(lengths, w)
    acc = np.zeros((length, arrays[0].shape[1]), dtype=np.float64)
    for a, wi in zip(arrays, w):
        if wi == 0.0:
            continue
        acc += wi * resample_series(a, length)
    return acc / total


def synthesize_centroid(series: Sequence[np.ndarray],
                        weights: Sequence[float] | None = None) -> np.ndarray:
    """Alias of :func:`weighted_mean_og` with the default target length —
    the operation Section 5.2 calls "synthesize a centroid OG"."""
    return weighted_mean_og(series, weights)
