"""Fluent query builder over an STRG-Index database.

Combines the two retrieval modalities the paper supports — similarity
search (Algorithm 3) and attribute predicates on moving objects — into a
single composable query:

    >>> from repro.query import Query
    >>> hits = (Query(db)
    ...         .similar_to(example_trajectory)
    ...         .heading(0.0)                 # eastbound
    ...         .velocity(minimum=2.0)
    ...         .between_frames(0, 500)
    ...         .limit(5)
    ...         .run())

Predicates filter; ``similar_to`` ranks.  Without ``similar_to`` results
are returned in index order.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.distance.base import Distance
from repro.distance.batch import one_vs_many
from repro.errors import IndexStateError, InvalidParameterError
from repro.graph.attributes import angle_difference
from repro.graph.object_graph import ObjectGraph
from repro.observability import OBS


@dataclass
class QueryResult:
    """One query hit: the OG and (when ranked) its distance."""

    og: ObjectGraph
    distance: float | None = None


class Query:
    """Composable retrieval over any queryable source.

    Accepts a :class:`~repro.storage.database.VideoDatabase`, a bare
    :class:`~repro.core.index.STRGIndex`, or a
    :class:`~repro.pipeline.VideoPipeline` — anything that either *is*
    an index (has ``object_graphs``) or *carries* one via an ``index``
    attribute.  A source whose index does not exist yet (an empty
    database, a pipeline that has not processed a segment) is accepted
    and resolved lazily at :meth:`run` time, where it yields ``[]``.
    """

    def __init__(self, source):
        if not (hasattr(source, "object_graphs") or hasattr(source, "index")):
            raise IndexStateError(
                f"{type(source).__name__} is not queryable: it has neither "
                "an 'object_graphs' iterator nor an 'index' attribute"
            )
        self._source = source
        self._predicates: list[Callable[[ObjectGraph], bool]] = []
        self._example = None
        self._distance: Distance | None = None
        self._limit: int | None = None
        self._budget: int | None = None

    def _resolve_index(self):
        """The live index behind the source (``None`` when empty).

        Resolved per :meth:`run`, so a query built over a fresh database
        or pipeline sees whatever index exists when it executes.
        """
        if hasattr(self._source, "object_graphs"):
            return self._source
        index = self._source.index
        if index is not None and not hasattr(index, "object_graphs"):
            raise IndexStateError(
                f"source index {type(index).__name__} has no object_graphs"
            )
        return index

    # -- ranking -------------------------------------------------------------

    def similar_to(self, example, distance: Distance | None = None) -> "Query":
        """Rank results by similarity to an example trajectory/OG.

        ``distance`` defaults to the index's metric distance (EGED_M).
        """
        self._example = example
        self._distance = distance
        return self

    # -- predicates ---------------------------------------------------------------

    def where(self, predicate: Callable[[ObjectGraph], bool]) -> "Query":
        """Arbitrary boolean predicate over OGs."""
        self._predicates.append(predicate)
        return self

    def heading(self, direction: float,
                tolerance: float = math.pi / 4) -> "Query":
        """Overall movement heading within ``tolerance`` of ``direction``."""

        def predicate(og: ObjectGraph) -> bool:
            deltas = np.diff(og.values[:, :2], axis=0)
            if deltas.shape[0] == 0:
                return False
            total = deltas.sum(axis=0)
            if not np.any(total):
                return False
            return angle_difference(
                math.atan2(total[1], total[0]), direction
            ) <= tolerance

        return self.where(predicate)

    def velocity(self, minimum: float | None = None,
                 maximum: float | None = None) -> "Query":
        """Mean velocity band (pixels/frame)."""
        if minimum is None and maximum is None:
            raise InvalidParameterError("velocity() needs a bound")

        def predicate(og: ObjectGraph) -> bool:
            v = og.mean_velocity()
            if minimum is not None and v < minimum:
                return False
            if maximum is not None and v > maximum:
                return False
            return True

        return self.where(predicate)

    def duration(self, minimum: int | None = None,
                 maximum: int | None = None) -> "Query":
        """Trajectory length band (frames)."""
        if minimum is None and maximum is None:
            raise InvalidParameterError("duration() needs a bound")

        def predicate(og: ObjectGraph) -> bool:
            n = og.duration()
            if minimum is not None and n < minimum:
                return False
            if maximum is not None and n > maximum:
                return False
            return True

        return self.where(predicate)

    def between_frames(self, start: int, stop: int) -> "Query":
        """Trajectory overlaps the frame interval ``[start, stop]``."""
        if start > stop:
            raise InvalidParameterError(
                f"empty frame interval [{start}, {stop}]"
            )

        def predicate(og: ObjectGraph) -> bool:
            return og.start_frame <= stop and start <= og.end_frame

        return self.where(predicate)

    def through_region(self, x0: float, y0: float, x1: float, y1: float
                       ) -> "Query":
        """Trajectory has at least one node inside the rectangle."""
        if x0 > x1 or y0 > y1:
            raise InvalidParameterError("empty region")

        def predicate(og: ObjectGraph) -> bool:
            xy = og.values[:, :2]
            inside = (
                (xy[:, 0] >= x0) & (xy[:, 0] <= x1)
                & (xy[:, 1] >= y0) & (xy[:, 1] <= y1)
            )
            return bool(inside.any())

        return self.where(predicate)

    def limit(self, k: int) -> "Query":
        """Cap the number of results (``0`` legally yields no results)."""
        if k < 0:
            raise InvalidParameterError(f"limit must be >= 0, got {k}")
        self._limit = k
        return self

    def budget(self, evaluations: int) -> "Query":
        """Bound the exact distance evaluations of a ranked query.

        Routes :meth:`run` through the index's approximate sketch tier
        (``search_budget=``, see ``docs/SEARCH.md``) instead of ranking
        every predicate survivor exactly.  Requires :meth:`similar_to`
        (there is nothing to rank otherwise) and :meth:`limit`; because
        ranking happens *before* predicate filtering on this path, a
        heavily filtered query may return fewer than ``limit`` rows —
        raise the budget or drop it to get exhaustive semantics back.
        """
        if evaluations < 1:
            raise InvalidParameterError(
                f"budget must be >= 1, got {evaluations}"
            )
        self._budget = evaluations
        return self

    # -- execution -------------------------------------------------------------------

    def _matches(self, og: ObjectGraph) -> bool:
        return all(predicate(og) for predicate in self._predicates)

    def run(self) -> list[QueryResult]:
        """Execute: filter by all predicates, then rank (if requested).

        An empty or not-yet-built index and a ``limit(0)`` both yield
        ``[]`` — a query over nothing has no results, not an error.
        """
        with OBS.span("query.run", ranked=self._example is not None) as sp:
            index = self._resolve_index()
            if index is None or self._limit == 0:
                return []
            if self._budget is not None:
                return self._run_budgeted(index, sp)
            candidates = [og for og in index.object_graphs()
                          if self._matches(og)]
            sp.set(candidates=len(candidates))
            if self._example is None:
                results = [QueryResult(og) for og in candidates]
                if self._limit is not None:
                    return results[: self._limit]
                return results
            if not candidates:
                return []
            distance = self._distance or index.metric_distance
            # One batched sweep ranks every candidate; with a limit,
            # heapq.nsmallest is O(N log k) instead of a full O(N log N)
            # sort (both are stable, so ties keep index order either way).
            dists = one_vs_many(distance, self._example, candidates)
            results = [QueryResult(og, float(d))
                       for og, d in zip(candidates, dists)]
            if self._limit is not None and self._limit < len(results):
                return heapq.nsmallest(self._limit, results,
                                       key=lambda r: r.distance)
            return sorted(results, key=lambda r: r.distance)

    def _run_budgeted(self, index, sp) -> list[QueryResult]:
        """Budgeted execution: approximate rank first, then filter."""
        if self._example is None:
            raise InvalidParameterError(
                "budget() needs similar_to(): an unranked query has no "
                "distance evaluations to bound"
            )
        if self._limit is None:
            raise InvalidParameterError(
                "budget() needs limit(): the approximate tier searches "
                "for a fixed top-k"
            )
        if self._distance is not None:
            raise InvalidParameterError(
                "budget() uses the index's own metric; drop the custom "
                "distance or the budget"
            )
        if not hasattr(index, "knn"):
            raise IndexStateError(
                f"source index {type(index).__name__} has no knn(); "
                "budgeted queries need a searchable index"
            )
        hits = index.knn(self._example, self._limit,
                         search_budget=self._budget)
        sp.set(candidates=len(hits))
        return [QueryResult(og, float(d)) for d, og, _ in hits
                if self._matches(og)]

    def count(self) -> int:
        """Number of OGs matching the predicates (ignores limit)."""
        index = self._resolve_index()
        if index is None:
            return 0
        return sum(1 for og in index.object_graphs()
                   if self._matches(og))
