"""Workload generators reproducing the paper's evaluation data.

- :mod:`repro.datasets.patterns` — the 48 moving patterns of Section 6.1
  (12 vertical, 12 horizontal, 8 diagonal, 16 U-turn).
- :mod:`repro.datasets.synthetic` — Pelleg-style Gaussian cluster spread
  plus Vlachos-style trajectory noise, converted to Object Graphs.
- :mod:`repro.datasets.real` — simulated Lab1/Lab2/Traffic1/Traffic2
  streams standing in for the real camera data of Table 1, including a
  renderer producing actual pixel videos for the full pipeline.
"""

from repro.datasets.patterns import (
    MotionPattern,
    ALL_PATTERNS,
    pattern_by_id,
    CANVAS,
)
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs
from repro.datasets.real import (
    StreamSpec,
    STREAMS,
    simulate_stream_ogs,
    render_stream_segment,
    stream_frame_count,
)

__all__ = [
    "MotionPattern",
    "ALL_PATTERNS",
    "pattern_by_id",
    "CANVAS",
    "SyntheticConfig",
    "generate_synthetic_ogs",
    "StreamSpec",
    "STREAMS",
    "simulate_stream_ogs",
    "render_stream_segment",
    "stream_frame_count",
]
