"""Simulated Lab/Traffic streams — the Table 1 substitute.

The paper's real data are four camera streams (Lab1, Lab2, Traffic1,
Traffic2).  No camera data ships offline, so each stream is simulated at
two fidelities:

- :func:`simulate_stream_ogs` draws the stream's Object Graphs directly
  from per-stream cluster prototypes (fast; drives Figure 8 and Table 2).
  Traffic streams use uniform bidirectional lane prototypes (the paper
  notes their "more uniform content" yields lower clustering error); lab
  streams use irregular anchor-to-anchor walks with larger within-cluster
  variance.
- :func:`render_stream_segment` renders an actual pixel video segment of
  the stream so the full segmentation -> STRG -> index pipeline can run on
  it (examples and integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.object_graph import ObjectGraph
from repro.video.frames import VideoSegment
from repro.video.synthesize import (
    Actor,
    BackgroundSpec,
    SceneRenderer,
    linear_trajectory,
    make_person,
    make_vehicle,
    uturn_trajectory,
)

#: Trajectory canvas for simulated stream OGs (matches the pattern canvas).
_CANVAS = 200.0


@dataclass(frozen=True)
class StreamSpec:
    """Statistical description of one simulated stream.

    ``n_ogs`` and ``duration_minutes`` reproduce Table 1; ``n_clusters``
    is the per-stream optimal cluster count of Table 2 / Figure 8;
    ``irregularity`` in ``[0, 1]`` scales within-cluster trajectory noise
    (lab > traffic); ``kind`` selects the scene type.
    """

    name: str
    n_ogs: int
    duration_minutes: float
    n_clusters: int
    irregularity: float
    kind: str  # "lab" or "traffic"
    confusion: float = 0.0
    fps: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("lab", "traffic"):
            raise InvalidParameterError(f"unknown stream kind {self.kind!r}")
        if not 0.0 <= self.irregularity <= 1.0:
            raise InvalidParameterError("irregularity must be in [0, 1]")
        if not 0.0 <= self.confusion <= 1.0:
            raise InvalidParameterError("confusion must be in [0, 1]")


#: The four streams of Table 1 (durations in minutes: 40h38m, 4h12m, 15m, 12m).
#: ``confusion`` rates target Table 2's error rates: lab streams contain
#: more erratic walkers (16.8% / 14.4%) than the uniform traffic streams
#: (8.8% / 9.5%).
STREAMS: dict[str, StreamSpec] = {
    "Lab1": StreamSpec("Lab1", 411, 40 * 60 + 38, 9, 0.55, "lab",
                       confusion=0.33, seed=101),
    "Lab2": StreamSpec("Lab2", 147, 4 * 60 + 12, 6, 0.50, "lab",
                       confusion=0.17, seed=102),
    "Traffic1": StreamSpec("Traffic1", 195, 15, 6, 0.18, "traffic",
                           confusion=0.15, seed=103),
    "Traffic2": StreamSpec("Traffic2", 203, 12, 6, 0.20, "traffic",
                           confusion=0.19, seed=104),
}


def stream_frame_count(spec: StreamSpec) -> int:
    """Total frame count implied by the stream duration (Eq. 9's ``N``)."""
    return int(round(spec.duration_minutes * 60.0 * spec.fps))


def _traffic_prototypes(spec: StreamSpec,
                        rng: np.random.Generator) -> list[np.ndarray]:
    """Bidirectional lane prototypes: ``n_clusters // 2`` lanes x 2 dirs.

    Lanes are spread far enough apart (relative to the stream jitter)
    that each (lane, direction) pair is a separable cluster — the
    uniform content the paper credits for the low traffic error rates.
    """
    lanes = max(spec.n_clusters // 2, 1)
    ys = np.linspace(40.0, 150.0, lanes) if lanes > 1 else np.array([95.0])
    protos: list[np.ndarray] = []
    for y in ys:
        protos.append(np.array([[10.0, y], [190.0, y]]))
        protos.append(np.array([[190.0, y + 25.0], [10.0, y + 25.0]]))
    return protos[: spec.n_clusters]


def _lab_prototypes(spec: StreamSpec,
                    rng: np.random.Generator) -> list[np.ndarray]:
    """Irregular anchor-to-anchor walk prototypes inside a room.

    Anchor sequences are drawn without repetition across prototypes so
    every cluster has a distinct route; within-cluster variance then
    comes entirely from the stream's ``irregularity``.
    """
    anchors = np.array([
        [15.0, 100.0],   # door
        [100.0, 15.0],   # shelf
        [185.0, 55.0],   # desk 1
        [170.0, 170.0],  # desk 2
        [55.0, 185.0],   # printer
        [100.0, 100.0],  # center
        [15.0, 15.0],    # corner cabinet
        [185.0, 185.0],  # window desk
    ])
    protos: list[np.ndarray] = []
    seen: set[tuple[int, ...]] = set()
    while len(protos) < spec.n_clusters:
        n_stops = int(rng.integers(2, 4))
        stops = tuple(
            int(s) for s in
            rng.choice(len(anchors), size=n_stops + 1, replace=False)
        )
        if stops in seen or tuple(reversed(stops)) in seen:
            continue
        seen.add(stops)
        protos.append(anchors[list(stops)])
    return protos


def _sample_along(waypoints: np.ndarray, length: int) -> np.ndarray:
    """Constant-speed sampling of a polyline, shape ``(length, 2)``."""
    seg = np.sqrt(np.sum(np.diff(waypoints, axis=0) ** 2, axis=1))
    cum = np.concatenate([[0.0], np.cumsum(seg)])
    if cum[-1] == 0.0:
        return np.repeat(waypoints[:1], length, axis=0)
    targets = np.linspace(0.0, cum[-1], length)
    x = np.interp(targets, cum, waypoints[:, 0])
    y = np.interp(targets, cum, waypoints[:, 1])
    return np.stack([x, y], axis=1)


def simulate_stream_ogs(spec: StreamSpec,
                        rng: np.random.Generator | None = None
                        ) -> list[ObjectGraph]:
    """Draw the stream's ``n_ogs`` Object Graphs with ground-truth labels.

    Each OG follows one of the stream's cluster prototypes, displaced by a
    Gaussian start offset (sigma 5) and jittered according to the stream's
    ``irregularity``.  With probability ``confusion`` the trajectory
    *transitions* between two prototypes (a lane change, a walker wandering
    between routes) — these boundary cases are what EM misclusters,
    reproducing the Table 2 error rates without blurring the clusters
    themselves.
    """
    rng = rng or np.random.default_rng(spec.seed)
    if spec.kind == "traffic":
        protos = _traffic_prototypes(spec, rng)
    else:
        protos = _lab_prototypes(spec, rng)
    ogs: list[ObjectGraph] = []
    jitter = 2.0 + 5.0 * spec.irregularity
    outlier_p = 0.05 * spec.irregularity
    for i in range(spec.n_ogs):
        label = i % len(protos)
        length = int(rng.integers(20, 45))
        path = _sample_along(protos[label], length)
        if rng.random() < spec.confusion and len(protos) > 1:
            other = (label + int(rng.integers(1, len(protos)))) % len(protos)
            blend = np.linspace(0.0, 1.0, length)[:, None]
            path = (1.0 - blend) * path + blend * _sample_along(
                protos[other], length
            )
        path = path + rng.normal(0.0, 5.0, size=2)
        path = path + rng.normal(0.0, jitter, size=path.shape)
        outliers = rng.random(length) < outlier_p
        n_out = int(outliers.sum())
        if n_out:
            path[outliers] = rng.uniform(0.0, _CANVAS, size=(n_out, 2))
        ogs.append(
            ObjectGraph.from_values(path, label=label, stream=spec.name)
        )
    return ogs


# -- pixel-level rendering -------------------------------------------------

_VEHICLE_COLORS = [(200, 30, 30), (30, 60, 200), (240, 240, 240),
                   (30, 160, 60), (220, 180, 40)]
_SHIRT_COLORS = [(40, 90, 200), (200, 60, 60), (60, 180, 90), (230, 200, 60)]


def _traffic_scene(num_frames: int, rng: np.random.Generator) -> SceneRenderer:
    """A road with vehicles crossing in both directions."""
    background = BackgroundSpec(
        width=160, height=120, base_color=(90, 140, 90),
        zones=[
            (0, 40, 160, 80, (70, 70, 75)),      # road
            (0, 58, 160, 62, (180, 180, 60)),    # center line
            (0, 0, 160, 20, (120, 170, 220)),    # sky strip
        ],
    )
    scene = SceneRenderer(background, rng=rng)
    n_vehicles = max(num_frames // 20, 2)
    for i in range(n_vehicles):
        color = _VEHICLE_COLORS[i % len(_VEHICLE_COLORS)]
        duration = int(rng.integers(num_frames // 2, num_frames + 1))
        start_frame = int(rng.integers(0, max(num_frames - duration, 1)))
        if i % 2 == 0:
            trajectory = linear_trajectory((-15.0, 50.0), (175.0, 50.0), duration)
        else:
            trajectory = linear_trajectory((175.0, 70.0), (-15.0, 70.0), duration)
        scene.add_actor(Actor(trajectory, make_vehicle(color),
                              start_frame=start_frame,
                              end_frame=start_frame + duration - 1,
                              name=f"vehicle-{i}"))
    return scene


def _lab_scene(num_frames: int, rng: np.random.Generator) -> SceneRenderer:
    """An indoor room with persons walking between anchors."""
    background = BackgroundSpec(
        width=160, height=120, base_color=(150, 140, 120),
        zones=[
            (0, 0, 160, 35, (200, 200, 195)),     # wall
            (110, 40, 155, 70, (120, 80, 50)),    # desk
            (10, 45, 40, 75, (90, 110, 140)),     # cabinet
        ],
    )
    scene = SceneRenderer(background, rng=rng)
    n_people = max(num_frames // 16, 2)
    for i in range(n_people):
        shirt = _SHIRT_COLORS[i % len(_SHIRT_COLORS)]
        duration = int(rng.integers(num_frames // 2, num_frames + 1))
        start_frame = int(rng.integers(0, max(num_frames - duration, 1)))
        lane = 78.0 + 14.0 * (i % 3)
        if i % 2 == 0:
            trajectory = linear_trajectory((10.0, lane), (150.0, lane - 6.0),
                                           duration)
        else:
            trajectory = uturn_trajectory((150.0, lane), (30.0, lane - 4.0),
                                          duration)
        scene.add_actor(Actor(trajectory, make_person(shirt=shirt),
                              start_frame=start_frame,
                              end_frame=start_frame + duration - 1,
                              name=f"person-{i}"))
    return scene


def render_stream_segment(name: str, num_frames: int = 60,
                          rng: np.random.Generator | None = None
                          ) -> VideoSegment:
    """Render a pixel-level segment of the named stream.

    The segment drives the full pipeline (segmentation, tracking,
    decomposition, indexing); ``num_frames`` controls its length.
    """
    try:
        spec = STREAMS[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown stream {name!r}; expected one of {sorted(STREAMS)}"
        ) from None
    rng = rng or np.random.default_rng(spec.seed)
    if spec.kind == "traffic":
        scene = _traffic_scene(num_frames, rng)
    else:
        scene = _lab_scene(num_frames, rng)
    return scene.render(num_frames, fps=spec.fps, name=name)
