"""Synthetic Object Graph generator (Section 6.1).

Reconstructs the paper's synthetic workload:

1. 48 moving patterns (:mod:`repro.datasets.patterns`);
2. Pelleg-style cluster structure: each OG instance is its pattern's path
   displaced by a Gaussian offset with ``sigma = 5``;
3. Vlachos-style noise: per-point Gaussian jitter whose scale grows with
   the *noise fraction* (5%-30%), plus the same fraction of outlier points
   replaced by uniform positions — the corruption model EGED's gap
   handling tolerates and DTW/LCS do not;
4. conversion to Object Graphs (temporal-subgraph value sequences) with
   ground-truth ``label`` = pattern id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.datasets.patterns import ALL_PATTERNS, CANVAS, MotionPattern
from repro.errors import InvalidParameterError
from repro.graph.object_graph import ObjectGraph


@dataclass
class SyntheticConfig:
    """Parameters of the synthetic OG workload.

    ``noise_fraction`` in ``[0, 1]`` is the paper's "variance of noise"
    percentage: jitter std is ``noise_fraction * jitter_scale`` and each
    point independently becomes a uniform outlier with probability
    ``noise_fraction``.
    """

    num_ogs: int = 480
    noise_fraction: float = 0.05
    sigma: float = 5.0
    jitter_scale: float = 40.0
    seed: int = 0
    patterns: Sequence[MotionPattern] = field(default_factory=lambda: ALL_PATTERNS)

    def __post_init__(self) -> None:
        if self.num_ogs < 1:
            raise InvalidParameterError(f"num_ogs must be >= 1, got {self.num_ogs}")
        if not 0.0 <= self.noise_fraction <= 1.0:
            raise InvalidParameterError(
                f"noise_fraction must be in [0, 1], got {self.noise_fraction}"
            )
        if self.sigma < 0:
            raise InvalidParameterError(f"sigma must be >= 0, got {self.sigma}")
        if not self.patterns:
            raise InvalidParameterError("patterns must be non-empty")


def _corrupt(path: np.ndarray, config: SyntheticConfig,
             rng: np.random.Generator) -> np.ndarray:
    """Apply Gaussian cluster offset, per-point jitter and outliers."""
    out = path + rng.normal(0.0, config.sigma, size=2)
    noise = config.noise_fraction
    if noise > 0:
        out = out + rng.normal(0.0, noise * config.jitter_scale, size=out.shape)
        outliers = rng.random(out.shape[0]) < noise
        n_out = int(outliers.sum())
        if n_out:
            out[outliers] = rng.uniform(0.0, CANVAS, size=(n_out, 2))
    return out


def generate_synthetic_ogs(config: SyntheticConfig | None = None,
                           rng: np.random.Generator | None = None
                           ) -> list[ObjectGraph]:
    """Generate a labeled synthetic OG data set.

    OGs are assigned to patterns round-robin so every pattern (cluster) is
    populated; each instance samples its own time length from the pattern's
    range before corruption.
    """
    config = config or SyntheticConfig()
    rng = rng or np.random.default_rng(config.seed)
    ogs: list[ObjectGraph] = []
    n_patterns = len(config.patterns)
    for i in range(config.num_ogs):
        pattern = config.patterns[i % n_patterns]
        length = pattern.sample_length(rng)
        path = pattern.generate(length)
        values = _corrupt(path, config, rng)
        ogs.append(
            ObjectGraph.from_values(
                values,
                label=pattern.pattern_id,
                pattern=pattern.name,
                object_size=pattern.object_size,
            )
        )
    return ogs
