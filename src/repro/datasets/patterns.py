"""The 48 moving patterns of the synthetic workload (Section 6.1).

"First, we design 48 moving patterns: vertical (12), horizontal (12),
diagonal (8) and U-turn (16).  Each pattern has two directions, different
sizes of objects and various time lengths."

Patterns live on a 200x200 canvas.  Each pattern is a parametric path; OGs
of any time length are produced by sampling the path uniformly, which is
how "various time lengths" is realized without changing the geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError

#: Canvas side length (pixels) for all synthetic trajectories.
CANVAS = 200.0

#: Object-size categories cycled across patterns ("different sizes").
SIZE_CATEGORIES = (8.0, 14.0, 22.0)

Point = tuple[float, float]


@dataclass(frozen=True)
class MotionPattern:
    """A parametric motion path.

    ``waypoints`` are traversed at constant speed; ``generate`` samples
    ``length`` positions along the full path.
    """

    pattern_id: int
    name: str
    category: str
    waypoints: tuple[Point, ...]
    object_size: float
    length_range: tuple[int, int] = (24, 48)

    def path_length(self) -> float:
        """Total Euclidean length of the waypoint polyline."""
        pts = np.asarray(self.waypoints, dtype=np.float64)
        return float(np.sum(np.sqrt(np.sum(np.diff(pts, axis=0) ** 2, axis=1))))

    def generate(self, length: int) -> np.ndarray:
        """Sample ``length`` positions along the path, shape ``(length, 2)``."""
        if length < 1:
            raise InvalidParameterError(f"length must be >= 1, got {length}")
        pts = np.asarray(self.waypoints, dtype=np.float64)
        seg = np.sqrt(np.sum(np.diff(pts, axis=0) ** 2, axis=1))
        cum = np.concatenate([[0.0], np.cumsum(seg)])
        total = cum[-1]
        if total == 0.0:
            return np.repeat(pts[:1], length, axis=0)
        targets = np.linspace(0.0, total, length)
        x = np.interp(targets, cum, pts[:, 0])
        y = np.interp(targets, cum, pts[:, 1])
        return np.stack([x, y], axis=1)

    def sample_length(self, rng: np.random.Generator) -> int:
        """Draw a time length from this pattern's range."""
        lo, hi = self.length_range
        return int(rng.integers(lo, hi + 1))


def _both_directions(base_id: int, name: str, category: str,
                     start: Point, *rest: Point,
                     object_size: float) -> list[MotionPattern]:
    """A pattern and its reversal (every pattern "has two directions")."""
    waypoints = (start, *rest)
    forward = MotionPattern(base_id, f"{name}-fwd", category, waypoints,
                            object_size)
    backward = MotionPattern(base_id + 1, f"{name}-rev", category,
                             tuple(reversed(waypoints)), object_size)
    return [forward, backward]


def _build_patterns() -> list[MotionPattern]:
    patterns: list[MotionPattern] = []
    next_id = 0

    def add(name: str, category: str, *waypoints: Point) -> None:
        nonlocal next_id
        size = SIZE_CATEGORIES[(next_id // 2) % len(SIZE_CATEGORIES)]
        patterns.extend(
            _both_directions(next_id, name, category, *waypoints,
                             object_size=size)
        )
        next_id += 2

    # 12 vertical: 6 lanes x 2 directions.
    for i, x in enumerate((25.0, 55.0, 85.0, 115.0, 145.0, 175.0)):
        add(f"vertical-{i}", "vertical", (x, 15.0), (x, 185.0))
    # 12 horizontal: 6 lanes x 2 directions.
    for i, y in enumerate((25.0, 55.0, 85.0, 115.0, 145.0, 175.0)):
        add(f"horizontal-{i}", "horizontal", (15.0, y), (185.0, y))
    # 8 diagonal: 4 paths x 2 directions.
    diagonals = [
        ((15.0, 15.0), (185.0, 185.0)),
        ((185.0, 15.0), (15.0, 185.0)),
        ((15.0, 65.0), (135.0, 185.0)),
        ((65.0, 15.0), (185.0, 135.0)),
    ]
    for i, (a, b) in enumerate(diagonals):
        add(f"diagonal-{i}", "diagonal", a, b)
    # 16 U-turn: 4 entry sides x 2 lanes x 2 directions.
    uturns = [
        ("uturn-left-0", (15.0, 60.0), (120.0, 60.0), (120.0, 80.0), (15.0, 80.0)),
        ("uturn-left-1", (15.0, 130.0), (160.0, 130.0), (160.0, 150.0), (15.0, 150.0)),
        ("uturn-right-0", (185.0, 50.0), (80.0, 50.0), (80.0, 70.0), (185.0, 70.0)),
        ("uturn-right-1", (185.0, 120.0), (40.0, 120.0), (40.0, 140.0), (185.0, 140.0)),
        ("uturn-top-0", (60.0, 15.0), (60.0, 120.0), (80.0, 120.0), (80.0, 15.0)),
        ("uturn-top-1", (130.0, 15.0), (130.0, 160.0), (150.0, 160.0), (150.0, 15.0)),
        ("uturn-bottom-0", (50.0, 185.0), (50.0, 80.0), (70.0, 80.0), (70.0, 185.0)),
        ("uturn-bottom-1", (120.0, 185.0), (120.0, 40.0), (140.0, 40.0), (140.0, 185.0)),
    ]
    for name, *waypoints in uturns:
        add(name, "uturn", *waypoints)
    return patterns


#: All 48 motion patterns, indexed by ``pattern_id``.
ALL_PATTERNS: list[MotionPattern] = _build_patterns()

_BY_ID = {p.pattern_id: p for p in ALL_PATTERNS}


def pattern_by_id(pattern_id: int) -> MotionPattern:
    """Look a pattern up by its id (0..47)."""
    try:
        return _BY_ID[pattern_id]
    except KeyError:
        raise InvalidParameterError(
            f"pattern_id must be in [0, {len(ALL_PATTERNS) - 1}], got {pattern_id}"
        ) from None
