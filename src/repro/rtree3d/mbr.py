"""3-D minimum bounding rectangles over ``(x, y, t)``."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class MBR3:
    """Axis-aligned box in ``(x, y, t)`` space."""

    mins: tuple[float, float, float]
    maxs: tuple[float, float, float]

    def __post_init__(self) -> None:
        if any(lo > hi for lo, hi in zip(self.mins, self.maxs)):
            raise InvalidParameterError(
                f"MBR mins {self.mins} exceed maxs {self.maxs}"
            )

    @classmethod
    def of_trajectory(cls, og) -> "MBR3":
        """Bounding box of an OG: spatial extent x frame span."""
        values = np.asarray(getattr(og, "values", og))[:, :2]
        frames = getattr(og, "frames", None)
        if frames is None:
            frames = np.arange(values.shape[0])
        return cls(
            mins=(float(values[:, 0].min()), float(values[:, 1].min()),
                  float(np.min(frames))),
            maxs=(float(values[:, 0].max()), float(values[:, 1].max()),
                  float(np.max(frames))),
        )

    def volume(self) -> float:
        """Box volume (0 for degenerate boxes)."""
        out = 1.0
        for lo, hi in zip(self.mins, self.maxs):
            out *= hi - lo
        return out

    def margin(self) -> float:
        """Sum of edge lengths."""
        return sum(hi - lo for lo, hi in zip(self.mins, self.maxs))

    def union(self, other: "MBR3") -> "MBR3":
        """Smallest box covering both."""
        return MBR3(
            mins=tuple(min(a, b) for a, b in zip(self.mins, other.mins)),
            maxs=tuple(max(a, b) for a, b in zip(self.maxs, other.maxs)),
        )

    def enlargement(self, other: "MBR3") -> float:
        """Volume increase needed to absorb ``other``."""
        return self.union(other).volume() - self.volume()

    def intersects(self, other: "MBR3") -> bool:
        """Whether the boxes overlap (touching counts)."""
        return all(
            lo <= other_hi and other_lo <= hi
            for lo, hi, other_lo, other_hi in zip(
                self.mins, self.maxs, other.mins, other.maxs
            )
        )

    def contains(self, other: "MBR3") -> bool:
        """Whether ``other`` lies entirely inside this box."""
        return all(
            lo <= other_lo and other_hi <= hi
            for lo, hi, other_lo, other_hi in zip(
                self.mins, self.maxs, other.mins, other.maxs
            )
        )

    def min_distance(self, other: "MBR3") -> float:
        """Euclidean gap between the boxes (0 when intersecting)."""
        total = 0.0
        for lo, hi, other_lo, other_hi in zip(
            self.mins, self.maxs, other.mins, other.maxs
        ):
            if other_hi < lo:
                gap = lo - other_hi
            elif hi < other_lo:
                gap = other_lo - hi
            else:
                gap = 0.0
            total += gap * gap
        return float(np.sqrt(total))
