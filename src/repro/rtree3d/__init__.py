"""3DR-tree baseline (Theodoridis, Vazirgiannis & Sellis, ICMCS 1996).

The related-work index the paper argues against: salient objects are
indexed by treating *time as a third R-tree dimension*, i.e. each
trajectory becomes an ``(x, y, t)`` minimum bounding box.  The paper's
critique — "simply treating the time as another dimension is not optimal
since spatial and temporal features should be considered differently" —
is demonstrated by the retrieval ablation bench: MBR proximity is a poor
proxy for motion similarity.
"""

from repro.rtree3d.mbr import MBR3
from repro.rtree3d.tree import RTree3D, RTree3DConfig

__all__ = ["MBR3", "RTree3D", "RTree3DConfig"]
