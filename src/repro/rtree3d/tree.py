"""R-tree over 3-D trajectory boxes (Guttman-style, quadratic split)."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any

from repro.errors import IndexStateError, InvalidParameterError
from repro.rtree3d.mbr import MBR3


@dataclass
class RTree3DConfig:
    """Fan-out bounds of the tree."""

    node_capacity: int = 8

    def __post_init__(self) -> None:
        if self.node_capacity < 3:
            raise InvalidParameterError(
                f"node_capacity must be >= 3, got {self.node_capacity}"
            )

    @property
    def min_fill(self) -> int:
        """Minimum entries after a split (40% rule, at least 1)."""
        return max(1, int(0.4 * self.node_capacity))


class _Entry:
    """Node entry: a box plus either a payload (leaf) or a child node."""

    __slots__ = ("mbr", "payload", "child")

    def __init__(self, mbr: MBR3, payload: Any = None,
                 child: "_Node | None" = None):
        self.mbr = mbr
        self.payload = payload
        self.child = child


class _Node:
    __slots__ = ("entries", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.entries: list[_Entry] = []
        self.is_leaf = is_leaf

    def mbr(self) -> MBR3:
        box = self.entries[0].mbr
        for entry in self.entries[1:]:
            box = box.union(entry.mbr)
        return box


class RTree3D:
    """Dynamic R-tree indexing trajectories by their ``(x, y, t)`` boxes."""

    def __init__(self, config: RTree3DConfig | None = None):
        self.config = config or RTree3DConfig()
        self._root = _Node(is_leaf=True)
        self._size = 0
        self._counter = itertools.count()

    def __len__(self) -> int:
        return self._size

    # -- insertion -----------------------------------------------------------

    def insert(self, og, payload: Any = None) -> None:
        """Insert a trajectory (anything ``MBR3.of_trajectory`` accepts)."""
        entry = _Entry(MBR3.of_trajectory(og), payload if payload is not None else og)
        split = self._insert(self._root, entry)
        if split is not None:
            old_root = self._root
            self._root = _Node(is_leaf=False)
            self._root.entries = [
                _Entry(old_root.mbr(), child=old_root),
                _Entry(split.mbr(), child=split),
            ]
        self._size += 1

    def _insert(self, node: _Node, entry: _Entry) -> _Node | None:
        """Recursive insert; returns the sibling node when ``node`` split."""
        if node.is_leaf:
            node.entries.append(entry)
        else:
            best = min(
                node.entries,
                key=lambda e: (e.mbr.enlargement(entry.mbr), e.mbr.volume()),
            )
            split_child = self._insert(best.child, entry)
            best.mbr = best.child.mbr()
            if split_child is not None:
                node.entries.append(_Entry(split_child.mbr(), child=split_child))
        if len(node.entries) > self.config.node_capacity:
            return self._split(node)
        return None

    def _split(self, node: _Node) -> _Node:
        """Guttman quadratic split; ``node`` keeps group A, returns B."""
        entries = node.entries
        # Pick the pair wasting the most volume as seeds.
        best_pair = (0, 1)
        worst_waste = -float("inf")
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    entries[i].mbr.union(entries[j].mbr).volume()
                    - entries[i].mbr.volume() - entries[j].mbr.volume()
                )
                if waste > worst_waste:
                    worst_waste = waste
                    best_pair = (i, j)
        seed_a, seed_b = best_pair
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        box_a = entries[seed_a].mbr
        box_b = entries[seed_b].mbr
        rest = [e for k, e in enumerate(entries) if k not in best_pair]
        min_fill = self.config.min_fill
        while rest:
            # Force-assign when a group must take everything remaining.
            if len(group_a) + len(rest) <= min_fill:
                group_a.extend(rest)
                break
            if len(group_b) + len(rest) <= min_fill:
                group_b.extend(rest)
                break
            # Pick the entry with the strongest preference.
            def preference(e: _Entry) -> float:
                return abs(box_a.enlargement(e.mbr) - box_b.enlargement(e.mbr))
            entry = max(rest, key=preference)
            rest.remove(entry)
            if box_a.enlargement(entry.mbr) <= box_b.enlargement(entry.mbr):
                group_a.append(entry)
                box_a = box_a.union(entry.mbr)
            else:
                group_b.append(entry)
                box_b = box_b.union(entry.mbr)
        node.entries = group_a
        sibling = _Node(node.is_leaf)
        sibling.entries = group_b
        return sibling

    # -- queries -----------------------------------------------------------------

    def range_query(self, box: MBR3) -> list[Any]:
        """Payloads of all trajectories whose MBR intersects ``box``."""
        results: list[Any] = []

        def visit(node: _Node) -> None:
            for entry in node.entries:
                if not entry.mbr.intersects(box):
                    continue
                if node.is_leaf:
                    results.append(entry.payload)
                else:
                    visit(entry.child)

        if self._size:
            visit(self._root)
        return results

    def knn(self, og, k: int) -> list[tuple[float, Any]]:
        """k nearest trajectories by *MBR distance* to the query's MBR.

        This is the geometric proximity the 3DR-tree can offer — the
        proxy for similarity whose weakness the paper points out.
        Returns ``(mbr_distance, payload)`` pairs, ascending.
        """
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        if self._size == 0:
            raise IndexStateError("cannot search an empty 3DR-tree")
        query = MBR3.of_trajectory(og)
        heap: list[tuple[float, int, bool, Any]] = [
            (0.0, next(self._counter), False, self._root)
        ]
        results: list[tuple[float, Any]] = []
        while heap and len(results) < k:
            dist, _, is_payload, item = heapq.heappop(heap)
            if is_payload:
                results.append((dist, item))
                continue
            node: _Node = item
            for entry in node.entries:
                d = query.min_distance(entry.mbr)
                if node.is_leaf:
                    heapq.heappush(
                        heap, (d, next(self._counter), True, entry.payload)
                    )
                else:
                    heapq.heappush(
                        heap, (d, next(self._counter), False, entry.child)
                    )
        return results

    # -- introspection ---------------------------------------------------------------

    def height(self) -> int:
        """Tree height (1 for a root-only tree)."""
        h = 1
        node = self._root
        while not node.is_leaf:
            node = node.entries[0].child
            h += 1
        return h
