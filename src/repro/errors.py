"""Exception hierarchy for the STRG-Index reproduction.

Every error raised by this package derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class EmptySequenceError(ReproError, ValueError):
    """A distance or clustering routine received an empty value sequence."""


class DimensionMismatchError(ReproError, ValueError):
    """Two value sequences have incompatible feature dimensions."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is outside its valid domain."""


class GraphStructureError(ReproError, ValueError):
    """A graph does not satisfy the structural preconditions of an
    operation (e.g. an Object Graph that is not a linear temporal chain)."""


class IndexStateError(ReproError, RuntimeError):
    """An index operation was attempted in an invalid state (e.g. searching
    an empty tree, inserting into a frozen index)."""


class ClusteringError(ReproError, RuntimeError):
    """A clustering run failed to produce a valid model (e.g. all points
    collapsed into one component, or a likelihood became degenerate)."""


class StorageError(ReproError, RuntimeError):
    """Serialization or database-file handling failed."""


class SegmentationError(ReproError, RuntimeError):
    """Region segmentation could not produce a valid labeling."""
