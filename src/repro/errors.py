"""Exception hierarchy for the STRG-Index reproduction.

Every error raised by this package derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class EmptySequenceError(ReproError, ValueError):
    """A distance or clustering routine received an empty value sequence."""


class DimensionMismatchError(ReproError, ValueError):
    """Two value sequences have incompatible feature dimensions."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is outside its valid domain."""


class GraphStructureError(ReproError, ValueError):
    """A graph does not satisfy the structural preconditions of an
    operation (e.g. an Object Graph that is not a linear temporal chain)."""


class IndexStateError(ReproError, RuntimeError):
    """An index operation was attempted in an invalid state (e.g. searching
    an empty tree, inserting into a frozen index)."""


class ClusteringError(ReproError, RuntimeError):
    """A clustering run failed to produce a valid model (e.g. all points
    collapsed into one component, or a likelihood became degenerate)."""


class StorageError(ReproError, RuntimeError):
    """Serialization or database-file handling failed."""


class SegmentationError(ReproError, RuntimeError):
    """Region segmentation could not produce a valid labeling."""


class DetailedError(ReproError):
    """Base for errors that carry a machine-readable ``details`` dict.

    ``details`` is safe to serialize (plain strings/numbers/lists) so
    quarantine reports, journals and telemetry can record failures
    without parsing the human-readable message.
    """

    def __init__(self, message: str = "", details: dict | None = None):
        super().__init__(message)
        self.details: dict = dict(details or {})


class CorruptSegmentError(DetailedError, RuntimeError):
    """A video segment's frame data is unusable (missing, malformed or
    failing validation) and the segment cannot be ingested."""


class IngestDegradedError(DetailedError, RuntimeError):
    """Too many segments were quarantined during ingestion: the drop
    tolerance of the active :class:`~repro.resilience.FaultPolicy` was
    exceeded and the batch must be treated as failed."""


class IndexCorruptionError(DetailedError, StorageError):
    """A persisted index or OG file failed an integrity check (truncated
    archive, checksum mismatch, or an unsupported format version)."""


class RecoveryError(DetailedError, StorageError):
    """Crash recovery could not reconstruct any usable state (no valid
    snapshot and no readable ingest journal)."""


class ServingError(ReproError, RuntimeError):
    """Base class for errors raised by the ``repro.serving`` subsystem."""


class ServiceOverloadError(ServingError):
    """The query service's admission queue is full: the request was
    rejected instead of queued (backpressure, not failure — retry later
    or shed load upstream)."""


class DeadlineExceededError(ServingError):
    """A request's deadline elapsed before it could be served.

    ``phase`` records *where* the deadline lapsed: ``"queued"`` (the
    request expired before any worker picked it up) or ``"execution"``
    (the index scan outran the budget and the stale answer was
    discarded).  Callers use it to decide whether to shed load (queued
    expiries mean the service is backed up) or shrink the query
    (execution expiries mean the work itself is too slow).
    """

    def __init__(self, message: str = "", phase: str | None = None):
        super().__init__(message)
        self.phase = phase


class ServiceStoppedError(ServingError):
    """A request was submitted to a service that is draining or has shut
    down."""


class ShardUnavailableError(DetailedError, ServingError):
    """A shard failed while serving a scatter-gather query.  Callers
    using the degraded-read path receive partial results flagged
    ``degraded=True`` instead of this error."""


class IngestOverloadError(ServingError):
    """The ingest service's bounded job queue is full: the submission
    was rejected (or a blocking ``submit(..., backpressure=True)`` timed
    out waiting for space).  Backpressure, not failure — slow the
    producer down or scale the worker pool up."""


class IngestTimeoutError(DetailedError, ServingError):
    """An ingest job exceeded its per-job processing timeout and was
    cancelled by the watchdog.  The job is quarantined, never retried —
    a slow job is treated as poison, not as a transient fault."""
