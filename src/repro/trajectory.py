"""Trajectory preprocessing toolkit.

Object Graph value series coming out of real trackers are noisy and
unevenly sampled; these transforms are the standard conditioning steps
applied before distance computation or clustering:

- :func:`smooth` — centered moving-average denoising;
- :func:`resample` — uniform re-sampling to a target length;
- :func:`simplify` — Douglas-Peucker polyline simplification;
- :func:`normalize` — translation / scale invariance;
- :func:`split_at_turns` — cut a trajectory at sharp direction changes
  (useful for turning one long wandering track into motion-homogeneous
  OGs, the unit the STRG-Index clusters best).

All functions accept anything :func:`repro.distance.base.as_series`
accepts and return plain ``(n, d)`` arrays.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distance.base import as_series, resample_series
from repro.errors import InvalidParameterError


def smooth(trajectory, window: int = 3) -> np.ndarray:
    """Centered moving average with edge truncation.

    ``window`` must be odd; a window of 1 is the identity.
    """
    arr = as_series(trajectory)
    if window < 1 or window % 2 == 0:
        raise InvalidParameterError(
            f"window must be a positive odd integer, got {window}"
        )
    if window == 1 or arr.shape[0] == 1:
        return arr.copy()
    half = window // 2
    out = np.empty_like(arr)
    n = arr.shape[0]
    for i in range(n):
        lo = max(0, i - half)
        hi = min(n, i + half + 1)
        out[i] = arr[lo:hi].mean(axis=0)
    return out


def resample(trajectory, length: int) -> np.ndarray:
    """Uniform linear re-sampling to ``length`` nodes."""
    return resample_series(as_series(trajectory), length)


def _point_segment_distance(points: np.ndarray, start: np.ndarray,
                            end: np.ndarray) -> np.ndarray:
    """Distances from each point to the segment ``start -> end``."""
    seg = end - start
    seg_len2 = float(seg @ seg)
    if seg_len2 == 0.0:
        return np.sqrt(np.sum((points - start) ** 2, axis=1))
    t = np.clip(((points - start) @ seg) / seg_len2, 0.0, 1.0)
    proj = start + t[:, None] * seg
    return np.sqrt(np.sum((points - proj) ** 2, axis=1))


def simplify(trajectory, tolerance: float) -> np.ndarray:
    """Douglas-Peucker simplification: drop nodes within ``tolerance`` of
    the simplified polyline.  Endpoints are always kept."""
    arr = as_series(trajectory)
    if tolerance < 0:
        raise InvalidParameterError(
            f"tolerance must be >= 0, got {tolerance}"
        )
    n = arr.shape[0]
    if n <= 2:
        return arr.copy()
    keep = np.zeros(n, dtype=bool)
    keep[0] = keep[n - 1] = True
    stack = [(0, n - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo < 2:
            continue
        inner = arr[lo + 1:hi]
        dists = _point_segment_distance(inner, arr[lo], arr[hi])
        worst = int(np.argmax(dists))
        if dists[worst] > tolerance:
            mid = lo + 1 + worst
            keep[mid] = True
            stack.append((lo, mid))
            stack.append((mid, hi))
    return arr[keep]


def normalize(trajectory, translation: bool = True,
              scale: bool = False) -> np.ndarray:
    """Translate to a zero-mean origin and/or scale to unit RMS radius.

    Makes EGED comparisons invariant to where (and optionally how large)
    a motion happened — e.g. matching "a U-turn" anywhere in the frame.
    """
    arr = as_series(trajectory).copy()
    if translation:
        arr -= arr.mean(axis=0)
    if scale:
        radius = float(np.sqrt(np.mean(np.sum(arr ** 2, axis=1))))
        if radius > 0:
            arr /= radius
    return arr


def heading_angles(trajectory) -> np.ndarray:
    """Per-step movement headings (radians), shape ``(n - 1,)``.

    Zero-displacement steps repeat the previous heading (0 at the start).
    """
    arr = as_series(trajectory)[:, :2]
    deltas = np.diff(arr, axis=0)
    angles = np.zeros(deltas.shape[0], dtype=np.float64)
    last = 0.0
    for i, (dx, dy) in enumerate(deltas):
        if dx != 0.0 or dy != 0.0:
            last = math.atan2(dy, dx)
        angles[i] = last
    return angles


def split_at_turns(trajectory, angle_threshold: float = math.pi / 3,
                   min_segment_length: int = 4) -> list[np.ndarray]:
    """Cut a trajectory wherever the heading turns sharply.

    A cut is placed between steps whose headings differ by more than
    ``angle_threshold``; segments shorter than ``min_segment_length``
    are merged into their predecessor.
    """
    if not 0 < angle_threshold <= math.pi:
        raise InvalidParameterError(
            f"angle_threshold must be in (0, pi], got {angle_threshold}"
        )
    if min_segment_length < 2:
        raise InvalidParameterError(
            f"min_segment_length must be >= 2, got {min_segment_length}"
        )
    arr = as_series(trajectory)
    n = arr.shape[0]
    if n <= min_segment_length:
        return [arr.copy()]
    angles = heading_angles(arr)
    cuts = [0]
    for i in range(1, angles.shape[0]):
        diff = abs((angles[i] - angles[i - 1] + math.pi) % (2 * math.pi)
                   - math.pi)
        if diff > angle_threshold and (i + 1) - cuts[-1] >= min_segment_length:
            cuts.append(i + 1)
    cuts.append(n)
    segments = []
    for lo, hi in zip(cuts, cuts[1:]):
        if hi - lo < min_segment_length and segments:
            # Merge runts into the previous segment.
            segments[-1] = np.vstack([segments[-1], arr[lo:hi]])
        else:
            segments.append(arr[lo:hi].copy())
    return segments
