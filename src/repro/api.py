"""The unified entry point: :func:`open_database`.

The package grew three inconsistent front doors — ``VideoDatabase``,
``STRGIndex(STRGIndexConfig)`` and ``VideoPipeline(PipelineConfig)`` —
each constructed differently and queried differently.  This module puts
one function in front of all of them::

    import repro

    db = repro.open_database("corpus.npz")      # load or create
    db.ingest(video)
    hits = db.knn(example, k=5)                 # similarity search
    rows = db.query().velocity(minimum=2.0).run()   # attribute search
    db.save()                                   # back to corpus.npz

``open_database`` always returns a
:class:`~repro.storage.database.VideoDatabase`; the older constructors
remain supported and are thin layers over the same machinery.

For continuous workloads, ``db.ingest_service(state_dir=...)`` upgrades
the write path to the streaming
:class:`~repro.serving.ingest.IngestService`: backpressured job
submission, journaled crash recovery, and queries that keep serving
while clips stream in (see ``docs/STREAMING.md``).
"""

from __future__ import annotations

import os

from repro.pipeline import PipelineConfig
from repro.storage.database import VideoDatabase
from repro.storage.store import open_store


def open_database(path: str | os.PathLike | None = None, *,
                  config: PipelineConfig | None = None,
                  create: bool = True,
                  mmap: bool | str = "auto",
                  **kwargs) -> VideoDatabase:
    """Open (or create) a video database.

    Parameters
    ----------
    path:
        Snapshot location — a columnar ``.strg`` store directory, a
        checksummed ``.npz`` archive, or a sharded NPZ meta archive (the
        format is autodetected, see ``docs/STORAGE.md``).  When a
        snapshot exists there, it is opened; otherwise a fresh database
        is created *bound* to that path, so a later ``db.save()`` needs
        no argument.  ``None`` gives an unbound in-memory database.
    config:
        :class:`~repro.pipeline.PipelineConfig` for the extraction
        pipeline and index (used both for fresh databases and as the
        pipeline config of loaded ones).
    create:
        With ``create=False`` a missing snapshot raises
        ``FileNotFoundError`` instead of creating an empty database.
    mmap:
        ``"auto"`` (default) memory-maps trajectory columns read-only
        when the snapshot format supports it (columnar stores), making
        the open O(1): the tree materializes lazily on first query and
        trajectory bytes stay on disk until a query faults them in.
        On such an open, budgeted queries (``knn(..., search_budget=N)``)
        never materialize the tree at all — the sketch tier streams
        from the store's mmap'd columns and only shortlist series are
        fetched (see ``docs/SEARCH.md``), so resident memory scales
        with the shortlist, not the corpus.
        ``True`` requires mmap (NPZ archives raise, pointing at
        ``repro convert``); ``False`` forces the eager full copy into
        RAM.
    **kwargs:
        Forwarded to :class:`~repro.storage.database.VideoDatabase`
        (``fault_policy``, ``retry_policy``, ``drop_tolerance``,
        ``journal_path``, ``shards``, ``placement``, ...).  With
        ``shards=N`` a fresh database maintains a sharded index (see
        ``docs/SERVING.md``); a sharded snapshot at ``path`` is
        detected and loaded as such automatically.
    """
    if path is None:
        return VideoDatabase(config, **kwargs)
    store = open_store(path)
    if store.exists():
        use_mmap = store.supports_mmap if mmap == "auto" else bool(mmap)
        # Only a format that can actually mmap loads lazily; forcing
        # mmap on one that cannot must fail now, not at first query.
        lazy = use_mmap and store.supports_mmap
        return VideoDatabase.load(store.path, config, mmap=use_mmap,
                                  lazy=lazy, **kwargs)
    if not create:
        raise FileNotFoundError(
            f"no database snapshot at {store.path} (pass create=True to "
            "start an empty one)"
        )
    db = VideoDatabase(config, **kwargs)
    db.path = store.path
    return db
