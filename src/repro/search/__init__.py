"""``repro.search`` — the two-stage approximate k-NN tier.

Stage 1 generates candidates from compact per-OG sketches (pivot
triangle bounds + quantized-trajectory voting); stage 2 reranks the
shortlist with the exact batched EGED_M kernel under a hard budget of
distance evaluations.  See ``docs/SEARCH.md`` for the sketch format and
budget semantics; the usual entry point is the ``search_budget=``
parameter of ``db.knn`` / ``STRGIndex.knn`` rather than this module
directly.
"""

from repro.search.sketch import (
    SketchConfig,
    SketchIndex,
    approx_knn,
    sketch_from_meta,
    sketch_meta_json,
)

__all__ = [
    "SketchConfig",
    "SketchIndex",
    "approx_knn",
    "sketch_from_meta",
    "sketch_meta_json",
]
