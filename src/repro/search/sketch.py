"""Compact per-OG sketches and the two-stage approximate k-NN search.

The exact search paths (``STRGIndex.knn``, the sharded scatter-gather)
pay at least one full EGED_M dynamic program per *surviving* candidate —
fine at thousands of OGs, hopeless at the hundreds of thousands the
ROADMAP north-star demands.  This module trades a bounded amount of
recall for a hard cap on exact distance evaluations, following the
paper's own cost model (Section 6.3 charges queries per distance
computation):

**Stage 1 — candidate generation.**  Every indexed OG carries a
*sketch*: its metric distance to a small set of pivot series (chosen by
greedy farthest-point, the same k-center heuristic the M-tree bulk
loader uses) plus a fixed-length quantized trajectory *signature*
(spatial grid cell x heading sector per resampled node).  Both live in
flat numpy arrays, so one vectorized pass scores the whole corpus:
triangle lower bounds ``max_p |d(Q,P_p) - d(S,P_p)|`` rank candidates by
how close they *can* be, and a temporal-voting channel (count of
matching signature codes, in the spirit of the temporal-voting video
search of PAPERS.md) rescues near-misses whose pivot geometry is
uninformative.  The top-C union of both channels becomes the shortlist.

**Stage 2 — exact rerank.**  Shortlisted candidates are evaluated with
the batched EGED_M kernel in ascending lower-bound order; a candidate
whose stored bound exceeds the current k-th best distance is pruned
without touching the kernel (the bound is exact, so pruning never costs
recall — only the shortlist cut can).

The *total* number of exact distance evaluations per query — the pivot
distances plus the rerank — never exceeds ``search_budget``.

Out-of-core operation
---------------------
The backing arrays (``og_ids``, ``pivot_dists``, ``sig``) need not be
owned RAM copies: :meth:`SketchIndex.attach_rows` binds them to
zero-copy views — typically the columnar store's mmap'd sketch columns
(see ``ColumnarStore.load_sketch``) — together with a *row provider*
that materializes ``(og, clip_ref)`` records lazily through the store's
row-addressed read path.  Candidate generation runs as a blocked scan
over fixed-size row blocks (exact per-block ``argpartition`` top-m per
channel, streamed merge — bit-identical to one global lexsort at any
block size), so query-time resident memory scales with the shortlist,
not the corpus.  Store-attached sketches can optionally fan the block
scan across processes with :func:`repro.parallel.ordered_chunk_map`;
workers reopen the sketch columns as their own mmaps, so nothing
corpus-sized is pickled.

Deletions tombstone rows instead of rewriting the arrays; owned
(in-RAM) sketches compact physically past a threshold, while
store-attached sketches keep the mask and leave compaction to the
store's segment merge.

Sketches hold no reference to a distance object: the owning index
passes its metric into every call, so deep-copied indexes (serving
snapshots) keep sharing one distance instance and counting wrappers
count every evaluation in one place.
"""

from __future__ import annotations

import json
import math
from collections import OrderedDict
from dataclasses import dataclass
from functools import partial
from typing import Any, Sequence

import numpy as np

from repro.distance.base import as_series, resample_series
from repro.distance.batch import one_vs_many
from repro.distance.bounds import gap_mass, pivot_lower_bounds
from repro.errors import InvalidParameterError
from repro.graph.object_graph import ObjectGraph
from repro.observability import OBS

#: Relative slack for rerank pruning comparisons, absorbing the batched
#: kernel's ~1e-12 float asymmetry (same role as ShardedIndexConfig's
#: ``prune_slack``).  Raising it never loses true neighbors.
PRUNE_SLACK = 1e-9

#: Tombstones before an owned sketch is worth compacting (and the dead
#: fraction that triggers it — mirrors the columnar merge policy).
TOMBSTONE_COMPACT_MIN = 64
TOMBSTONE_COMPACT_FRACTION = 0.25


@dataclass
class SketchConfig:
    """Tuning of the per-OG sketches.

    ``num_pivots`` reference series for the triangle bounds (each costs
    one exact distance per query, paid out of the budget).
    ``sig_length`` nodes per resampled signature; ``grid`` spatial cells
    per axis and ``heading_sectors`` direction buckets define the code
    alphabet (``grid**2 * heading_sectors`` symbols).  ``vote_share`` is
    the fraction of the candidate shortlist filled from the voting
    channel (the rest comes from the pivot-bound channel).
    ``pivot_sample_size`` caps the farthest-point sweep during fitting;
    ``rerank_batch`` is the kernel flush size of stage 2.
    ``block_rows`` is the row-block size of the candidate scan — it
    bounds stage 1's working set when the arrays are mmap views and has
    no effect on results (the blocked scan is bit-identical to a global
    sort at any block size).
    """

    num_pivots: int = 8
    sig_length: int = 16
    grid: int = 4
    heading_sectors: int = 8
    vote_share: float = 0.25
    pivot_sample_size: int = 256
    rerank_batch: int = 64
    seed: int = 0
    block_rows: int = 4096

    def __post_init__(self) -> None:
        if self.num_pivots < 1:
            raise InvalidParameterError(
                f"num_pivots must be >= 1, got {self.num_pivots}"
            )
        if self.sig_length < 1:
            raise InvalidParameterError(
                f"sig_length must be >= 1, got {self.sig_length}"
            )
        if self.grid < 1 or self.heading_sectors < 1:
            raise InvalidParameterError(
                "grid and heading_sectors must be >= 1"
            )
        if not 0.0 <= self.vote_share <= 1.0:
            raise InvalidParameterError(
                f"vote_share must be in [0, 1], got {self.vote_share}"
            )
        if self.pivot_sample_size < 1:
            raise InvalidParameterError(
                f"pivot_sample_size must be >= 1, got {self.pivot_sample_size}"
            )
        if self.rerank_batch < 1:
            raise InvalidParameterError(
                f"rerank_batch must be >= 1, got {self.rerank_batch}"
            )
        if self.block_rows < 1:
            raise InvalidParameterError(
                f"block_rows must be >= 1, got {self.block_rows}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "num_pivots": self.num_pivots,
            "sig_length": self.sig_length,
            "grid": self.grid,
            "heading_sectors": self.heading_sectors,
            "vote_share": self.vote_share,
            "pivot_sample_size": self.pivot_sample_size,
            "rerank_batch": self.rerank_batch,
            "seed": self.seed,
            "block_rows": self.block_rows,
        }


# -- row providers ----------------------------------------------------------


class _EagerRows:
    """Row records held as in-RAM ``(og, clip_ref)`` pairs.

    The classic mode: :meth:`SketchIndex.build` and archive loads that
    already materialized every OG use it.  Series are *not* stored —
    ``series_at`` returns the OG's own float64 values view, so the old
    duplicate ``series`` list is gone.
    """

    def __init__(self, records: list[tuple[ObjectGraph, Any]] | None = None):
        self.records: list[tuple[ObjectGraph, Any]] = (
            list(records) if records is not None else []
        )

    def __len__(self) -> int:
        return len(self.records)

    def append(self, pairs: list[tuple[ObjectGraph, Any]]) -> None:
        self.records.extend(pairs)

    def record(self, row: int) -> tuple[ObjectGraph, Any]:
        return self.records[row]

    def series_at(self, row: int) -> np.ndarray:
        return as_series(self.records[row][0])

    def compact(self, keep: np.ndarray) -> None:
        self.records = [self.records[int(i)] for i in keep]


class LazyRows:
    """Rows materialized on demand from a row-addressed store reader.

    ``reader`` must expose ``record(row) -> (og, clip_ref)`` backed by
    offsets-table slicing (no full-segment loads) — see
    ``ColumnarStore.row_reader``.  A small LRU keeps hot shortlist rows
    (and their series, via the OG's values view) warm across queries.
    Rows appended after attachment (live adds) are kept eagerly in a
    tail list, mirroring the sketch's own base/tail array split.
    """

    def __init__(self, reader: Any, n_attached: int, cache_size: int = 512):
        self._reader = reader
        self._attached = int(n_attached)
        self._cache: OrderedDict[int, tuple[ObjectGraph, Any]] = OrderedDict()
        self._cache_size = max(1, int(cache_size))
        self._tail: list[tuple[ObjectGraph, Any]] = []

    def __len__(self) -> int:
        return self._attached + len(self._tail)

    def append(self, pairs: list[tuple[ObjectGraph, Any]]) -> None:
        self._tail.extend(pairs)

    def record(self, row: int) -> tuple[ObjectGraph, Any]:
        if row >= self._attached:
            return self._tail[row - self._attached]
        pair = self._cache.get(row)
        if pair is not None:
            self._cache.move_to_end(row)
            return pair
        pair = self._reader.record(row)
        self._cache[row] = pair
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return pair

    def series_at(self, row: int) -> np.ndarray:
        # The OG's values ARE the zero-copy series slice the reader cut
        # out of the mmap'd og_values column.
        return self.record(row)[0].values

    def compact(self, keep: np.ndarray) -> None:
        raise InvalidParameterError(
            "store-attached sketch rows cannot be compacted in place; "
            "the owning store's segment merge reclaims tombstones"
        )


# -- blocked-scan primitives ------------------------------------------------


def _exact_top(m: int, keys: tuple[np.ndarray, ...]) -> np.ndarray:
    """Indices of the exact top-``m`` rows under lexicographic ``keys``.

    ``keys`` are aligned 1-D arrays, most-significant first.  An
    ``argpartition`` on the primary key prunes to at most ``m`` rows
    plus the primary-key ties at the boundary; the full compound sort
    then runs only on that superset.  Because every caller ends its key
    tuple with a unique og_id, the compound order is total — so the
    selected set (and its order) is exactly the first ``m`` entries of
    a global lexsort, which is what makes the blocked scan bit-identical
    to the monolithic path.
    """
    if m <= 0:
        return np.empty(0, dtype=np.intp)
    lex = tuple(reversed(keys))
    n = len(keys[0])
    if n <= m:
        return np.lexsort(lex)
    primary = keys[0]
    part = np.argpartition(primary, m - 1)[:m]
    boundary = primary[part].max()
    cand = np.flatnonzero(primary <= boundary)
    order = np.lexsort(tuple(key[cand] for key in lex))
    return cand[order[:m]]


def _merge_top(m: int, acc: tuple[np.ndarray, ...] | None,
               new: tuple[np.ndarray, ...]) -> tuple[np.ndarray, ...]:
    """Streamed merge of winner tuples ``(key..., rows)`` keeping top-m.

    Both inputs are already individually top-m (≤ m rows each), so the
    merge sorts at most ``2m`` rows regardless of corpus size.
    """
    if acc is None:
        return new
    cat = tuple(np.concatenate([a, b]) for a, b in zip(acc, new))
    sel = _exact_top(m, cat[:-1])
    return tuple(a[sel] for a in cat)


def _block_winners(rows: np.ndarray, ids: np.ndarray, pd: np.ndarray,
                   sig: np.ndarray | None, qd: np.ndarray | None,
                   qsig: np.ndarray | None, m_bound: int, m_vote: int
                   ) -> tuple[tuple | None, tuple | None, np.ndarray]:
    """Score one row block and cut its exact per-channel winners.

    Returns ``(bound, vote, lbs)`` where ``bound`` is ``(lbs, ids,
    rows)`` under key ``(lb, og_id)`` and ``vote`` is ``(neg_votes,
    lbs, ids, rows)`` under key ``(-votes, lb, og_id)`` — the same
    compound orders the monolithic lexsorts used.
    """
    if qd is not None and pd.shape[1]:
        lbs = pivot_lower_bounds(qd, pd)
    else:
        lbs = np.zeros(len(rows), dtype=np.float64)
    bound = vote = None
    if m_bound:
        sel = _exact_top(m_bound, (lbs, ids))
        bound = (lbs[sel], ids[sel], rows[sel])
    if m_vote:
        neg_votes = -((sig == qsig).sum(axis=1).astype(np.int64))
        sel = _exact_top(m_vote, (neg_votes, lbs, ids))
        vote = (neg_votes[sel], lbs[sel], ids[sel], rows[sel])
    return bound, vote, lbs


def _scan_ranges(payload: dict, start: int, ranges: list) -> list:
    """Parallel-scan worker: winners for a list of base-row ranges.

    Runs in a pool process: reopens the sketch columns as private mmaps
    (``payload`` carries file paths, never arrays), scans each range in
    ``block_rows`` blocks and returns one merged ``(bound, vote)``
    winner pair per range — at most ``m`` rows each, so the pickled
    results stay shortlist-sized.
    """
    del start  # ranges carry absolute row bounds already
    pd = np.load(payload["pivot_dists"], mmap_mode="r")
    sig = (np.load(payload["sig"], mmap_mode="r")
           if payload["qsig"] is not None else None)
    dead = payload["dead"]
    if dead is not None:
        dead = np.unpackbits(dead, count=payload["rows"]).astype(bool)
    qd, qsig = payload["qd"], payload["qsig"]
    m_bound, m_vote = payload["m_bound"], payload["m_vote"]
    block = payload["block"]
    out = []
    for lo, hi in ranges:
        bound = vote = None
        for blo in range(lo, hi, block):
            bhi = min(blo + block, hi)
            rows = np.arange(blo, bhi, dtype=np.int64)
            b_pd = pd[blo:bhi]
            b_sig = sig[blo:bhi] if sig is not None else None
            if dead is not None:
                keep = np.flatnonzero(~dead[blo:bhi])
                if keep.size == 0:
                    continue
                if keep.size < bhi - blo:
                    rows = rows[keep]
                    b_pd = b_pd[keep]
                    b_sig = b_sig[keep] if b_sig is not None else None
            # Store-attached sketches number rows 0..n-1, so the row
            # ordinal doubles as the og_id tie-break key.
            b, v, _ = _block_winners(rows, rows, np.asarray(b_pd), b_sig,
                                     qd, qsig, m_bound, m_vote)
            if b is not None:
                bound = _merge_top(m_bound, bound, b)
            if v is not None:
                vote = _merge_top(m_vote, vote, v)
        out.append((bound, vote))
    return out


class SketchIndex:
    """Flat-array sketches over a corpus of Object Graphs.

    Row ``i`` of every array describes the same OG: ``og_ids[i]``,
    ``pivot_dists[i]`` (distance to each pivot), ``sig[i]`` (quantized
    signature codes).  The public arrays are live views: tombstoned
    rows are already filtered out.  Internally rows live in a *base*
    part — owned RAM arrays, or zero-copy mmap views bound by
    :meth:`attach_rows` — plus an owned *tail* for rows appended after
    attachment, so incremental adds never force the mmap base into RAM.
    ``(og, clip_ref)`` records come from a row provider and may be
    materialized lazily from the store's row-addressed read path.
    """

    def __init__(self, config: SketchConfig | None = None):
        self.config = config or SketchConfig()
        #: Fixed reference series chosen at fit time.  Immutable after
        #: fitting: incremental adds reuse them, which is what makes a
        #: maintained sketch bit-identical to one rebuilt with the same
        #: pivots.
        self.pivots: list[np.ndarray] = []
        #: Spatial bounding box (lo, hi) over the first two value dims,
        #: frozen at fit time; later values are clipped into it.
        self.bbox: tuple[np.ndarray, np.ndarray] | None = None
        self._ids = np.empty(0, dtype=np.int64)
        self._pd = np.empty((0, 0), dtype=np.float64)
        self._sig = np.empty((0, self.config.sig_length), dtype=np.int16)
        self._tail_ids = np.empty(0, dtype=np.int64)
        self._tail_pd = np.empty((0, 0), dtype=np.float64)
        self._tail_sig = np.empty((0, self.config.sig_length), dtype=np.int16)
        self._rows: Any = _EagerRows()
        self._dead: np.ndarray | None = None
        self._n_dead = 0
        self._owned = True
        self._scan_paths: dict[str, Any] | None = None
        #: Set by ``ColumnarStore.load_sketch`` to the metric it bound
        #: for delta replay — a convenience for callers running the
        #: sketch-only query path without a materialized index.  The
        #: sketch itself never calls it (see the module docstring).
        self.replay_distance: Any = None

    # -- public array views ------------------------------------------------

    @property
    def og_ids(self) -> np.ndarray:
        """Live og_id per row (tombstoned rows filtered out)."""
        return self._live(self._cat(self._ids, self._tail_ids))

    @property
    def pivot_dists(self) -> np.ndarray:
        """Live pivot-distance matrix, shape ``(len(self), num_pivots)``."""
        return self._live(self._cat(self._pd, self._tail_pd))

    @property
    def sig(self) -> np.ndarray:
        """Live signature codes, shape ``(len(self), sig_length)`` int16."""
        return self._live(self._cat(self._sig, self._tail_sig))

    @property
    def dead_rows(self) -> int:
        """Tombstoned rows awaiting compaction (0 on the clean path)."""
        return self._n_dead

    @staticmethod
    def _cat(base: np.ndarray, tail: np.ndarray) -> np.ndarray:
        if len(tail) == 0:
            return base
        if len(base) == 0:
            return tail
        return np.concatenate([base, tail])

    def _live(self, arr: np.ndarray) -> np.ndarray:
        if self._n_dead == 0:
            return arr
        return arr[~self._dead]

    def _num_raw(self) -> int:
        return len(self._ids) + len(self._tail_ids)

    def __len__(self) -> int:
        return self._num_raw() - self._n_dead

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, distance, ogs: Sequence[ObjectGraph],
              clip_refs: Sequence[Any] | None = None,
              config: SketchConfig | None = None) -> "SketchIndex":
        """Fit pivots + bbox on ``ogs`` and sketch every one of them."""
        sketch = cls(config)
        ogs = list(ogs)
        series = [as_series(og) for og in ogs]
        sketch._fit(distance, series)
        sketch.add(distance, ogs, clip_refs, _series=series)
        return sketch

    def _fit(self, distance, series: list[np.ndarray]) -> None:
        """Choose pivots (greedy farthest-point) and the signature bbox."""
        if not series:
            return
        planar = [self._planar(s) for s in series]
        stacked = np.concatenate(planar, axis=0)
        lo = stacked.min(axis=0)
        hi = stacked.max(axis=0)
        span = hi - lo
        hi = np.where(span <= 0, lo + 1.0, hi)
        self.bbox = (lo.astype(np.float64), hi.astype(np.float64))

        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        if len(series) > cfg.pivot_sample_size:
            pick = rng.choice(len(series), size=cfg.pivot_sample_size,
                              replace=False)
            sample = [series[int(i)] for i in sorted(pick)]
        else:
            sample = series
        # Deterministic seed: the series farthest from the empty
        # sequence (largest gap mass) — an extreme point, which is what
        # the k-center greedy wants to start from anyway.
        masses = [gap_mass(s) for s in sample]
        first = int(np.argmax(masses))
        pivots = [np.array(sample[first], dtype=np.float64, copy=True)]
        closest = np.asarray(
            one_vs_many(distance, pivots[0], sample), dtype=np.float64
        )
        while len(pivots) < min(cfg.num_pivots, len(sample)):
            nxt = int(np.argmax(closest))
            if closest[nxt] <= 0.0:
                break  # every remaining sample coincides with a pivot
            pivots.append(np.array(sample[nxt], dtype=np.float64, copy=True))
            closest = np.minimum(
                closest,
                np.asarray(one_vs_many(distance, pivots[-1], sample),
                           dtype=np.float64),
            )
        self.pivots = pivots

    def attach_rows(self, og_ids: np.ndarray, pivot_dists: np.ndarray,
                    sig: np.ndarray, rows: Any, *, owned: bool = False,
                    scan_paths: dict[str, Any] | None = None) -> None:
        """Bind backing arrays (possibly zero-copy mmap views) + records.

        ``rows`` is the row provider (:class:`_EagerRows` or
        :class:`LazyRows`) aligned with the arrays.  ``owned=True``
        means the arrays may be grown/compacted in place (RAM
        semantics); ``owned=False`` keeps them frozen — later adds go
        to the owned tail and deletes stay tombstones.  ``scan_paths``
        optionally names the on-disk ``.npy`` files behind the views so
        the parallel block scan can reopen them in worker processes.
        """
        og_ids = np.asarray(og_ids, dtype=np.int64)
        pivot_dists = np.asarray(pivot_dists, dtype=np.float64)
        sig_arr = np.asarray(sig, dtype=np.int16)
        n = len(og_ids)
        if pivot_dists.shape != (n, len(self.pivots)):
            raise InvalidParameterError(
                f"pivot_dists shape {pivot_dists.shape} does not match "
                f"{n} rows x {len(self.pivots)} pivots"
            )
        if sig_arr.shape != (n, self.config.sig_length):
            raise InvalidParameterError(
                f"sig shape {sig_arr.shape} does not match "
                f"{n} rows x sig_length {self.config.sig_length}"
            )
        if len(rows) != n:
            raise InvalidParameterError(
                f"row provider has {len(rows)} rows, arrays have {n}"
            )
        self._ids = og_ids
        self._pd = pivot_dists
        self._sig = sig_arr
        self._tail_ids = np.empty(0, dtype=np.int64)
        self._tail_pd = np.empty((0, pivot_dists.shape[1]), dtype=np.float64)
        self._tail_sig = np.empty((0, self.config.sig_length), dtype=np.int16)
        self._rows = rows
        self._dead = None
        self._n_dead = 0
        self._owned = bool(owned)
        self._scan_paths = dict(scan_paths) if scan_paths else None

    # -- maintenance -------------------------------------------------------

    def add(self, distance, ogs: Sequence[ObjectGraph],
            clip_refs: Sequence[Any] | None = None, *,
            _series: list[np.ndarray] | None = None) -> None:
        """Append sketch rows for ``ogs`` (pivots stay fixed)."""
        ogs = list(ogs)
        if not ogs:
            return
        refs = list(clip_refs) if clip_refs is not None else [None] * len(ogs)
        if len(refs) != len(ogs):
            raise InvalidParameterError(
                f"{len(ogs)} OGs but {len(refs)} clip refs"
            )
        series = (_series if _series is not None
                  else [as_series(og) for og in ogs])
        if not self.pivots:
            # First rows of an initially-empty sketch: fit on them.
            self._fit(distance, series)
        new_pd = np.stack(
            [np.asarray(one_vs_many(distance, pivot, series),
                        dtype=np.float64)
             for pivot in self.pivots],
            axis=1,
        ) if self.pivots else np.empty((len(ogs), 0))
        new_sig = self._signatures(series)
        new_ids = np.array([og.og_id for og in ogs], dtype=np.int64)
        if self._owned:
            if len(self._ids) == 0:
                self._ids, self._pd, self._sig = new_ids, new_pd, new_sig
            else:
                self._ids = np.concatenate([self._ids, new_ids])
                self._pd = np.concatenate([self._pd, new_pd])
                self._sig = np.concatenate([self._sig, new_sig])
        else:
            # Attached base arrays are frozen (often mmap views):
            # growth goes to the owned tail so the base never gets
            # concatenated into RAM.
            if len(self._tail_ids) == 0:
                self._tail_ids, self._tail_pd, self._tail_sig = (
                    new_ids, new_pd, new_sig
                )
            else:
                self._tail_ids = np.concatenate([self._tail_ids, new_ids])
                self._tail_pd = np.concatenate([self._tail_pd, new_pd])
                self._tail_sig = np.concatenate([self._tail_sig, new_sig])
        if self._dead is not None:
            self._dead = np.concatenate(
                [self._dead, np.zeros(len(ogs), dtype=bool)]
            )
        self._rows.append(list(zip(ogs, refs)))
        OBS.count("search.sketch_rows_added", len(ogs))

    def remove(self, og_id: int) -> bool:
        """Tombstone the sketch row of ``og_id``; True when it existed.

        O(n) to locate the row but O(1) to drop it — the three
        full-array ``np.delete`` copies are gone.  Owned sketches
        compact physically once tombstones pass the threshold;
        store-attached sketches keep the mask (the store's segment
        merge reclaims the rows).
        """
        row = self._find_live_row(og_id)
        if row is None:
            return False
        if self._dead is None:
            self._dead = np.zeros(self._num_raw(), dtype=bool)
        self._dead[row] = True
        self._n_dead += 1
        if (self._owned
                and self._n_dead >= TOMBSTONE_COMPACT_MIN
                and self._n_dead >= TOMBSTONE_COMPACT_FRACTION
                * self._num_raw()):
            self.compact_tombstones()
        return True

    def _find_live_row(self, og_id: int) -> int | None:
        for offset, ids in ((0, self._ids),
                            (len(self._ids), self._tail_ids)):
            for hit in np.nonzero(ids == og_id)[0]:
                raw = offset + int(hit)
                if self._dead is None or not self._dead[raw]:
                    return raw
        return None

    def compact_tombstones(self) -> bool:
        """Physically drop tombstoned rows (owned sketches only)."""
        if self._n_dead == 0 or not self._owned:
            return False
        keep = np.flatnonzero(~self._dead)
        self._ids = self._cat(self._ids, self._tail_ids)[keep]
        self._pd = self._cat(self._pd, self._tail_pd)[keep]
        self._sig = self._cat(self._sig, self._tail_sig)[keep]
        self._tail_ids = np.empty(0, dtype=np.int64)
        self._tail_pd = np.empty((0, self._pd.shape[1]), dtype=np.float64)
        self._tail_sig = np.empty((0, self.config.sig_length), dtype=np.int16)
        self._rows.compact(keep)
        self._dead = None
        self._n_dead = 0
        return True

    # -- row-addressed record access ---------------------------------------

    def row_og_ids(self, rows: np.ndarray) -> np.ndarray:
        """og_ids for raw row ordinals (candidate ``idx`` values)."""
        rows = np.asarray(rows, dtype=np.int64)
        n0 = len(self._ids)
        if len(self._tail_ids) == 0:
            return np.asarray(self._ids[rows], dtype=np.int64)
        out = np.empty(len(rows), dtype=np.int64)
        in_base = rows < n0
        out[in_base] = self._ids[rows[in_base]]
        out[~in_base] = self._tail_ids[rows[~in_base] - n0]
        return out

    def row_record(self, row: int) -> tuple[ObjectGraph, Any]:
        """``(og, clip_ref)`` of a raw row (lazily materialized)."""
        return self._rows.record(int(row))

    def row_series(self, row: int) -> np.ndarray:
        """Normalized series of a raw row for the rerank kernel."""
        return self._rows.series_at(int(row))

    # -- signatures --------------------------------------------------------

    def _planar(self, series: np.ndarray) -> np.ndarray:
        """First two value dims of a series (1-D values get y = 0)."""
        if series.shape[1] >= 2:
            return series[:, :2]
        return np.concatenate(
            [series[:, :1], np.zeros((series.shape[0], 1))], axis=1
        )

    def signature(self, series: np.ndarray) -> np.ndarray:
        """Quantized trajectory codes, shape ``(sig_length,)`` int16.

        Each resampled node becomes ``cell * heading_sectors + sector``
        where ``cell`` is its spatial grid cell (bbox-relative) and
        ``sector`` the heading bucket of the step leading into it.
        ``series`` must already be a normalized ``(n, d)`` float array
        (callers hold one from :func:`as_series`; re-converting here
        was pure overhead).
        """
        cfg = self.config
        lo, hi = self.bbox if self.bbox is not None else (
            np.zeros(2), np.ones(2)
        )
        series = np.asarray(series, dtype=np.float64)
        if series.ndim == 1:
            series = series.reshape(-1, 1)
        pts = resample_series(self._planar(series), cfg.sig_length)
        frac = (pts - lo) / (hi - lo)
        cells = np.clip((frac * cfg.grid).astype(np.int64), 0, cfg.grid - 1)
        cell = cells[:, 0] * cfg.grid + cells[:, 1]
        deltas = np.diff(pts, axis=0, prepend=pts[:1])
        angles = np.arctan2(deltas[:, 1], deltas[:, 0])  # [-pi, pi]
        sector = np.clip(
            ((angles + math.pi) / (2.0 * math.pi)
             * cfg.heading_sectors).astype(np.int64),
            0, cfg.heading_sectors - 1,
        )
        return (cell * cfg.heading_sectors + sector).astype(np.int16)

    def _signatures(self, series: list[np.ndarray]) -> np.ndarray:
        if not series:
            return np.empty((0, self.config.sig_length), dtype=np.int16)
        return np.stack([self.signature(s) for s in series])

    # -- stage 1: candidate generation -------------------------------------

    def _iter_part_blocks(self, offset: int, ids: np.ndarray,
                          pd: np.ndarray, sig: np.ndarray):
        """Fixed-size blocks of one array part, tombstones filtered."""
        block = self.config.block_rows
        for lo in range(0, len(ids), block):
            hi = min(lo + block, len(ids))
            rows = np.arange(offset + lo, offset + hi, dtype=np.int64)
            b_ids = np.asarray(ids[lo:hi], dtype=np.int64)
            b_pd = np.asarray(pd[lo:hi], dtype=np.float64)
            b_sig = sig[lo:hi]
            if self._n_dead:
                keep = np.flatnonzero(~self._dead[offset + lo:offset + hi])
                if keep.size == 0:
                    continue
                if keep.size < hi - lo:
                    rows, b_ids = rows[keep], b_ids[keep]
                    b_pd, b_sig = b_pd[keep], b_sig[keep]
            yield rows, b_ids, b_pd, b_sig

    def _iter_blocks(self):
        """Blocks over base then tail — never straddling the boundary,
        so base blocks stay views over the (possibly mmap'd) arrays."""
        yield from self._iter_part_blocks(0, self._ids, self._pd, self._sig)
        yield from self._iter_part_blocks(len(self._ids), self._tail_ids,
                                          self._tail_pd, self._tail_sig)

    def candidates(self, distance, series: np.ndarray, budget: int, k: int,
                   *, scan_workers: int | None = None
                   ) -> tuple[np.ndarray, np.ndarray, int]:
        """Shortlist for an exact rerank under ``budget`` evaluations.

        Returns ``(idx, lbs, pivot_evals)``: candidate raw-row indices
        (ascending), their triangle lower bounds, and how many exact
        evaluations stage 1 already spent (one per pivot).  The
        shortlist size is ``max(k, budget - pivot_evals)`` — stage 1's
        own exact work is paid out of the same budget the rerank draws
        from.

        The scan is blocked: each ``block_rows`` slice contributes its
        exact per-channel top-m (``argpartition`` + boundary-tie
        resolution) and a streamed ≤ 2m merge folds it into the global
        shortlist, so peak working memory is O(block + shortlist)
        whatever the corpus size.  ``scan_workers`` optionally fans the
        base-array scan across processes for store-attached sketches.
        """
        n = len(self)
        if n == 0:
            return (np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.float64), 0)
        pivot_evals = len(self.pivots)
        qd = (np.asarray(one_vs_many(distance, series, self.pivots),
                         dtype=np.float64)
              if pivot_evals else None)
        shortlist = max(k, budget - pivot_evals)
        if shortlist >= n:
            rows, lbs = self._scan_full(qd)
            return rows, lbs, pivot_evals
        # Channel 1 (primary): smallest triangle lower bound — the
        # candidates that *can* be nearest.  Channel 2: most matching
        # signature codes — temporal voting, rescuing candidates whose
        # pivot geometry is uninformative.  Ties break on og_id so the
        # shortlist is deterministic for any corpus order.
        n_vote = min(shortlist, int(round(shortlist * self.config.vote_share)))
        n_bound = shortlist - n_vote
        # The vote channel tracks the top-``shortlist`` rows, not just
        # top-``n_vote``: the bound channel claims at most n_bound of
        # them, leaving >= n_vote unclaimed — exactly the rows the
        # monolithic skip-chosen fill would pick.
        m_vote = shortlist if n_vote else 0
        qsig = self.signature(series) if n_vote else None
        bound, vote = self._scan_top(qd, qsig, n_bound, m_vote, scan_workers)
        if bound is not None:
            lbs_b, _, rows_b = bound
        else:
            rows_b = np.empty(0, dtype=np.int64)
            lbs_b = np.empty(0, dtype=np.float64)
        if n_vote:
            _, v_lbs, _, v_rows = vote
            taken = np.zeros(self._num_raw(), dtype=bool)
            taken[rows_b] = True
            need = shortlist - len(rows_b)
            pick = np.flatnonzero(~taken[v_rows])[:need]
            rows = np.concatenate([rows_b, v_rows[pick]])
            lbs = np.concatenate([lbs_b, v_lbs[pick]])
        else:
            rows, lbs = rows_b, lbs_b
        order = np.argsort(rows)
        return rows[order], lbs[order], pivot_evals

    def _scan_full(self, qd: np.ndarray | None
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Degenerate shortlist >= n: every live row, with its bound."""
        rows_parts: list[np.ndarray] = []
        lbs_parts: list[np.ndarray] = []
        for rows, _, pd, _ in self._iter_blocks():
            if qd is not None and pd.shape[1]:
                lbs_parts.append(pivot_lower_bounds(qd, pd))
            else:
                lbs_parts.append(np.zeros(len(rows), dtype=np.float64))
            rows_parts.append(rows)
        if not rows_parts:
            return (np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.float64))
        return np.concatenate(rows_parts), np.concatenate(lbs_parts)

    def _scan_top(self, qd: np.ndarray | None, qsig: np.ndarray | None,
                  m_bound: int, m_vote: int, scan_workers: int | None
                  ) -> tuple[tuple | None, tuple | None]:
        if scan_workers is not None and scan_workers > 1:
            result = self._scan_top_parallel(qd, qsig, m_bound, m_vote,
                                             scan_workers)
            if result is not None:
                return result
        bound = vote = None
        for rows, ids, pd, sig in self._iter_blocks():
            b, v, _ = _block_winners(rows, ids, pd, sig, qd, qsig,
                                     m_bound, m_vote)
            if b is not None:
                bound = _merge_top(m_bound, bound, b)
            if v is not None:
                vote = _merge_top(m_vote, vote, v)
        return bound, vote

    def _scan_top_parallel(self, qd: np.ndarray | None,
                           qsig: np.ndarray | None, m_bound: int,
                           m_vote: int, workers: int
                           ) -> tuple[tuple | None, tuple | None] | None:
        """Fan the base block scan across processes (mmap sketches only).

        Each worker reopens the sketch columns from ``_scan_paths`` as
        its own mmap — no corpus-sized pickling.  Tail rows (adds since
        attachment) are folded in serially; returns None (caller falls
        back to the serial scan) when the sketch is not store-attached.
        """
        from repro.parallel import chunk_bounds, ordered_chunk_map

        paths = self._scan_paths
        n_base = len(self._ids)
        if paths is None or n_base == 0:
            return None
        dead_packed = None
        if self._n_dead and bool(self._dead[:n_base].any()):
            dead_packed = np.packbits(self._dead[:n_base])
        payload = {
            "pivot_dists": paths["pivot_dists"],
            "sig": paths["sig"],
            "rows": n_base,
            "qd": qd,
            "qsig": qsig,
            "m_bound": m_bound,
            "m_vote": m_vote,
            "block": self.config.block_rows,
            "dead": dead_packed,
        }
        # A few coarse ranges per worker: each pool task merges its
        # blocks locally so only winner tuples travel back.
        ranges = chunk_bounds(n_base, workers * 2)
        bound = vote = None
        for b, v in ordered_chunk_map(partial(_scan_ranges, payload),
                                      ranges, workers=workers):
            if b is not None:
                bound = _merge_top(m_bound, bound, b)
            if v is not None:
                vote = _merge_top(m_vote, vote, v)
        for rows, ids, pd, sig in self._iter_part_blocks(
                n_base, self._tail_ids, self._tail_pd, self._tail_sig):
            b, v, _ = _block_winners(rows, ids, pd, sig, qd, qsig,
                                     m_bound, m_vote)
            if b is not None:
                bound = _merge_top(m_bound, bound, b)
            if v is not None:
                vote = _merge_top(m_vote, vote, v)
        return bound, vote


def approx_knn(sketch: SketchIndex, distance,
               query: ObjectGraph | np.ndarray, k: int, search_budget: int,
               executor: Any = None, scan_workers: int | None = None
               ) -> list[tuple[float, ObjectGraph, Any]]:
    """Two-stage approximate k-NN over a :class:`SketchIndex`.

    At most ``search_budget`` exact distance evaluations are spent in
    total (pivot distances + rerank), floored at ``k + num_pivots`` so a
    degenerate budget still returns ``k`` hits.  With ``search_budget >=
    len(sketch) + num_pivots`` the search degenerates to an exact full
    scan: every row is shortlisted and pruning is bound-exact.  Hits are
    ``(distance, og, clip_ref)`` sorted by ``(distance, og_id)`` — the
    same contract as the exact paths, and bit-identical whether the
    sketch rows live in RAM or stream from the store's mmap columns.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if search_budget < 1:
        raise InvalidParameterError(
            f"search_budget must be >= 1, got {search_budget}"
        )
    series = as_series(query)
    n = len(sketch)
    with OBS.span("search.approx_knn", k=k, budget=search_budget) as sp:
        OBS.count("search.knn_queries")
        idx, lbs, pivot_evals = sketch.candidates(
            distance, series, search_budget, k, scan_workers=scan_workers
        )
        OBS.count("search.candidates_generated", len(idx))
        # Rerank in ascending (lower bound, og_id) order: the most
        # promising candidates seed the k-th best distance early, and
        # the sorted bounds make the prune a single prefix cut.
        order = np.lexsort((sketch.row_og_ids(idx), lbs))
        idx = idx[order]
        lbs = lbs[order]

        best: list[tuple[float, ObjectGraph, Any]] = []

        def kth() -> tuple[float, float]:
            if len(best) == k:
                return (best[-1][0], best[-1][1].og_id)
            return (float("inf"), float("inf"))

        evaluated = 0
        pruned = 0
        start = 0
        batch = sketch.config.rerank_batch
        while start < len(idx):
            bound = kth()[0]
            slack = (0.0 if math.isinf(bound)
                     else PRUNE_SLACK * (1.0 + abs(bound)))
            if lbs[start] > bound + slack:
                # Sorted ascending: every remaining candidate is
                # provably outside the current top-k.
                pruned = len(idx) - start
                break
            stop = min(len(idx), start + batch)
            while stop > start and lbs[stop - 1] > bound + slack:
                stop -= 1
            chunk = idx[start:stop]
            items = [sketch.row_series(int(i)) for i in chunk]
            if executor is not None:
                dists = executor.one_vs_many(distance, series, items)
            else:
                dists = one_vs_many(distance, series, items)
            evaluated += len(chunk)
            for i, d in zip(chunk, dists):
                d = float(d)
                og, ref = sketch.row_record(int(i))
                if (d, og.og_id) < kth():
                    _insort(best, (d, og, ref))
                    if len(best) > k:
                        best.pop()
            start = stop
        OBS.count("search.distances_computed", evaluated + pivot_evals)
        OBS.count("search.candidates_pruned", pruned)
        OBS.count("search.distances_saved",
                  max(0, n - evaluated - pivot_evals))
        sp.set(hits=len(best), evaluated=evaluated, pruned=pruned)
        return best


def _insort(best: list, entry: tuple) -> None:
    """Insert ``entry`` into ``best`` ordered by ``(distance, og_id)``."""
    key = (entry[0], entry[1].og_id)
    lo, hi = 0, len(best)
    while lo < hi:
        mid = (lo + hi) // 2
        if (best[mid][0], best[mid][1].og_id) < key:
            lo = mid + 1
        else:
            hi = mid
    best.insert(lo, entry)


def sketch_meta_json(sketch: SketchIndex) -> str:
    """Serializable sketch metadata (config + bbox) for persistence."""
    lo, hi = sketch.bbox if sketch.bbox is not None else (None, None)
    return json.dumps({
        "config": sketch.config.to_dict(),
        "bbox_lo": None if lo is None else [float(v) for v in lo],
        "bbox_hi": None if hi is None else [float(v) for v in hi],
    })


def sketch_from_meta(meta_json: str) -> SketchIndex:
    """Empty :class:`SketchIndex` restored from :func:`sketch_meta_json`.

    The caller fills pivots and rows (see
    :mod:`repro.storage.serialize`).  Metas written before the blocked
    scan lack ``block_rows`` and get the default.
    """
    meta = json.loads(meta_json)
    cfg = dict(meta["config"])
    cfg.setdefault("block_rows", SketchConfig.block_rows)
    sketch = SketchIndex(SketchConfig(**cfg))
    if meta.get("bbox_lo") is not None:
        sketch.bbox = (
            np.asarray(meta["bbox_lo"], dtype=np.float64),
            np.asarray(meta["bbox_hi"], dtype=np.float64),
        )
    return sketch
