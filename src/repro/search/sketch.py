"""Compact per-OG sketches and the two-stage approximate k-NN search.

The exact search paths (``STRGIndex.knn``, the sharded scatter-gather)
pay at least one full EGED_M dynamic program per *surviving* candidate —
fine at thousands of OGs, hopeless at the hundreds of thousands the
ROADMAP north-star demands.  This module trades a bounded amount of
recall for a hard cap on exact distance evaluations, following the
paper's own cost model (Section 6.3 charges queries per distance
computation):

**Stage 1 — candidate generation.**  Every indexed OG carries a
*sketch*: its metric distance to a small set of pivot series (chosen by
greedy farthest-point, the same k-center heuristic the M-tree bulk
loader uses) plus a fixed-length quantized trajectory *signature*
(spatial grid cell x heading sector per resampled node).  Both live in
flat numpy arrays, so one vectorized pass scores the whole corpus:
triangle lower bounds ``max_p |d(Q,P_p) - d(S,P_p)|`` rank candidates by
how close they *can* be, and a temporal-voting channel (count of
matching signature codes, in the spirit of the temporal-voting video
search of PAPERS.md) rescues near-misses whose pivot geometry is
uninformative.  The top-C union of both channels becomes the shortlist.

**Stage 2 — exact rerank.**  Shortlisted candidates are evaluated with
the batched EGED_M kernel in ascending lower-bound order; a candidate
whose stored bound exceeds the current k-th best distance is pruned
without touching the kernel (the bound is exact, so pruning never costs
recall — only the shortlist cut can).

The *total* number of exact distance evaluations per query — the pivot
distances plus the rerank — never exceeds ``search_budget``.

Sketches hold no reference to a distance object: the owning index
passes its metric into every call, so deep-copied indexes (serving
snapshots) keep sharing one distance instance and counting wrappers
count every evaluation in one place.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.distance.base import as_series, resample_series
from repro.distance.batch import one_vs_many
from repro.distance.bounds import gap_mass, pivot_lower_bounds
from repro.errors import InvalidParameterError
from repro.graph.object_graph import ObjectGraph
from repro.observability import OBS

#: Relative slack for rerank pruning comparisons, absorbing the batched
#: kernel's ~1e-12 float asymmetry (same role as ShardedIndexConfig's
#: ``prune_slack``).  Raising it never loses true neighbors.
PRUNE_SLACK = 1e-9


@dataclass
class SketchConfig:
    """Tuning of the per-OG sketches.

    ``num_pivots`` reference series for the triangle bounds (each costs
    one exact distance per query, paid out of the budget).
    ``sig_length`` nodes per resampled signature; ``grid`` spatial cells
    per axis and ``heading_sectors`` direction buckets define the code
    alphabet (``grid**2 * heading_sectors`` symbols).  ``vote_share`` is
    the fraction of the candidate shortlist filled from the voting
    channel (the rest comes from the pivot-bound channel).
    ``pivot_sample_size`` caps the farthest-point sweep during fitting;
    ``rerank_batch`` is the kernel flush size of stage 2.
    """

    num_pivots: int = 8
    sig_length: int = 16
    grid: int = 4
    heading_sectors: int = 8
    vote_share: float = 0.25
    pivot_sample_size: int = 256
    rerank_batch: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_pivots < 1:
            raise InvalidParameterError(
                f"num_pivots must be >= 1, got {self.num_pivots}"
            )
        if self.sig_length < 1:
            raise InvalidParameterError(
                f"sig_length must be >= 1, got {self.sig_length}"
            )
        if self.grid < 1 or self.heading_sectors < 1:
            raise InvalidParameterError(
                "grid and heading_sectors must be >= 1"
            )
        if not 0.0 <= self.vote_share <= 1.0:
            raise InvalidParameterError(
                f"vote_share must be in [0, 1], got {self.vote_share}"
            )
        if self.pivot_sample_size < 1:
            raise InvalidParameterError(
                f"pivot_sample_size must be >= 1, got {self.pivot_sample_size}"
            )
        if self.rerank_batch < 1:
            raise InvalidParameterError(
                f"rerank_batch must be >= 1, got {self.rerank_batch}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "num_pivots": self.num_pivots,
            "sig_length": self.sig_length,
            "grid": self.grid,
            "heading_sectors": self.heading_sectors,
            "vote_share": self.vote_share,
            "pivot_sample_size": self.pivot_sample_size,
            "rerank_batch": self.rerank_batch,
            "seed": self.seed,
        }


class SketchIndex:
    """Flat-array sketches over a corpus of Object Graphs.

    Row ``i`` of every array describes the same OG: ``og_ids[i]``,
    ``pivot_dists[i]`` (distance to each pivot), ``sig[i]`` (quantized
    signature codes).  ``records[i]`` keeps the ``(og, clip_ref)`` pair
    and ``series[i]`` its normalized values for the rerank kernel.
    Rows are append-only except for :meth:`remove`; the arrays are
    grown in (amortized) batches by :meth:`add`.
    """

    def __init__(self, config: SketchConfig | None = None):
        self.config = config or SketchConfig()
        #: Fixed reference series chosen at fit time.  Immutable after
        #: fitting: incremental adds reuse them, which is what makes a
        #: maintained sketch bit-identical to one rebuilt with the same
        #: pivots.
        self.pivots: list[np.ndarray] = []
        #: Spatial bounding box (lo, hi) over the first two value dims,
        #: frozen at fit time; later values are clipped into it.
        self.bbox: tuple[np.ndarray, np.ndarray] | None = None
        self.og_ids = np.empty(0, dtype=np.int64)
        self.pivot_dists = np.empty((0, 0), dtype=np.float64)
        self.sig = np.empty((0, self.config.sig_length), dtype=np.int16)
        self.records: list[tuple[ObjectGraph, Any]] = []
        self.series: list[np.ndarray] = []

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, distance, ogs: Sequence[ObjectGraph],
              clip_refs: Sequence[Any] | None = None,
              config: SketchConfig | None = None) -> "SketchIndex":
        """Fit pivots + bbox on ``ogs`` and sketch every one of them."""
        sketch = cls(config)
        ogs = list(ogs)
        series = [as_series(og) for og in ogs]
        sketch._fit(distance, series)
        sketch.add(distance, ogs, clip_refs, _series=series)
        return sketch

    def _fit(self, distance, series: list[np.ndarray]) -> None:
        """Choose pivots (greedy farthest-point) and the signature bbox."""
        if not series:
            return
        planar = [self._planar(s) for s in series]
        stacked = np.concatenate(planar, axis=0)
        lo = stacked.min(axis=0)
        hi = stacked.max(axis=0)
        span = hi - lo
        hi = np.where(span <= 0, lo + 1.0, hi)
        self.bbox = (lo.astype(np.float64), hi.astype(np.float64))

        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        if len(series) > cfg.pivot_sample_size:
            pick = rng.choice(len(series), size=cfg.pivot_sample_size,
                              replace=False)
            sample = [series[int(i)] for i in sorted(pick)]
        else:
            sample = series
        # Deterministic seed: the series farthest from the empty
        # sequence (largest gap mass) — an extreme point, which is what
        # the k-center greedy wants to start from anyway.
        masses = [gap_mass(s) for s in sample]
        first = int(np.argmax(masses))
        pivots = [np.array(sample[first], dtype=np.float64, copy=True)]
        closest = np.asarray(
            one_vs_many(distance, pivots[0], sample), dtype=np.float64
        )
        while len(pivots) < min(cfg.num_pivots, len(sample)):
            nxt = int(np.argmax(closest))
            if closest[nxt] <= 0.0:
                break  # every remaining sample coincides with a pivot
            pivots.append(np.array(sample[nxt], dtype=np.float64, copy=True))
            closest = np.minimum(
                closest,
                np.asarray(one_vs_many(distance, pivots[-1], sample),
                           dtype=np.float64),
            )
        self.pivots = pivots

    # -- maintenance -------------------------------------------------------

    def add(self, distance, ogs: Sequence[ObjectGraph],
            clip_refs: Sequence[Any] | None = None, *,
            _series: list[np.ndarray] | None = None) -> None:
        """Append sketch rows for ``ogs`` (pivots stay fixed)."""
        ogs = list(ogs)
        if not ogs:
            return
        refs = list(clip_refs) if clip_refs is not None else [None] * len(ogs)
        if len(refs) != len(ogs):
            raise InvalidParameterError(
                f"{len(ogs)} OGs but {len(refs)} clip refs"
            )
        series = (_series if _series is not None
                  else [as_series(og) for og in ogs])
        if not self.pivots:
            # First rows of an initially-empty sketch: fit on them.
            self._fit(distance, series)
        new_pd = np.stack(
            [np.asarray(one_vs_many(distance, pivot, series),
                        dtype=np.float64)
             for pivot in self.pivots],
            axis=1,
        ) if self.pivots else np.empty((len(ogs), 0))
        new_sig = self._signatures(series)
        new_ids = np.array([og.og_id for og in ogs], dtype=np.int64)
        if len(self.og_ids) == 0:
            self.pivot_dists = new_pd
            self.sig = new_sig
            self.og_ids = new_ids
        else:
            self.pivot_dists = np.concatenate([self.pivot_dists, new_pd])
            self.sig = np.concatenate([self.sig, new_sig])
            self.og_ids = np.concatenate([self.og_ids, new_ids])
        self.records.extend(zip(ogs, refs))
        self.series.extend(series)
        OBS.count("search.sketch_rows_added", len(ogs))

    def remove(self, og_id: int) -> bool:
        """Drop the sketch row of ``og_id``; True when it existed."""
        where = np.nonzero(self.og_ids == og_id)[0]
        if where.size == 0:
            return False
        i = int(where[0])
        self.og_ids = np.delete(self.og_ids, i)
        self.pivot_dists = np.delete(self.pivot_dists, i, axis=0)
        self.sig = np.delete(self.sig, i, axis=0)
        del self.records[i]
        del self.series[i]
        return True

    def __len__(self) -> int:
        return len(self.records)

    # -- signatures --------------------------------------------------------

    def _planar(self, series: np.ndarray) -> np.ndarray:
        """First two value dims of a series (1-D values get y = 0)."""
        if series.shape[1] >= 2:
            return series[:, :2]
        return np.concatenate(
            [series[:, :1], np.zeros((series.shape[0], 1))], axis=1
        )

    def signature(self, series: np.ndarray) -> np.ndarray:
        """Quantized trajectory codes, shape ``(sig_length,)`` int16.

        Each resampled node becomes ``cell * heading_sectors + sector``
        where ``cell`` is its spatial grid cell (bbox-relative) and
        ``sector`` the heading bucket of the step leading into it.
        """
        cfg = self.config
        lo, hi = self.bbox if self.bbox is not None else (
            np.zeros(2), np.ones(2)
        )
        pts = resample_series(self._planar(as_series(series)),
                              cfg.sig_length)
        frac = (pts - lo) / (hi - lo)
        cells = np.clip((frac * cfg.grid).astype(np.int64), 0, cfg.grid - 1)
        cell = cells[:, 0] * cfg.grid + cells[:, 1]
        deltas = np.diff(pts, axis=0, prepend=pts[:1])
        angles = np.arctan2(deltas[:, 1], deltas[:, 0])  # [-pi, pi]
        sector = np.clip(
            ((angles + math.pi) / (2.0 * math.pi)
             * cfg.heading_sectors).astype(np.int64),
            0, cfg.heading_sectors - 1,
        )
        return (cell * cfg.heading_sectors + sector).astype(np.int16)

    def _signatures(self, series: list[np.ndarray]) -> np.ndarray:
        if not series:
            return np.empty((0, self.config.sig_length), dtype=np.int16)
        return np.stack([self.signature(s) for s in series])

    # -- stage 1: candidate generation -------------------------------------

    def candidates(self, distance, series: np.ndarray, budget: int, k: int
                   ) -> tuple[np.ndarray, np.ndarray, int]:
        """Shortlist for an exact rerank under ``budget`` evaluations.

        Returns ``(idx, lbs, pivot_evals)``: candidate row indices,
        their triangle lower bounds, and how many exact evaluations
        stage 1 already spent (one per pivot).  The shortlist size is
        ``max(k, budget - pivot_evals)`` — stage 1's own exact work is
        paid out of the same budget the rerank draws from.
        """
        n = len(self)
        if n == 0:
            return (np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.float64), 0)
        pivot_evals = len(self.pivots)
        if pivot_evals:
            qd = np.asarray(
                one_vs_many(distance, series, self.pivots), dtype=np.float64
            )
            lbs = pivot_lower_bounds(qd, self.pivot_dists)
        else:
            lbs = np.zeros(n, dtype=np.float64)
        shortlist = max(k, budget - pivot_evals)
        if shortlist >= n:
            return np.arange(n, dtype=np.int64), lbs, pivot_evals
        # Channel 1 (primary): smallest triangle lower bound — the
        # candidates that *can* be nearest.  Channel 2: most matching
        # signature codes — temporal voting, rescuing candidates whose
        # pivot geometry is uninformative.  Ties break on og_id so the
        # shortlist is deterministic for any corpus order.
        n_vote = min(shortlist, int(round(shortlist * self.config.vote_share)))
        n_bound = shortlist - n_vote
        by_bound = np.lexsort((self.og_ids, lbs))
        chosen = np.zeros(n, dtype=bool)
        chosen[by_bound[:n_bound]] = True
        if n_vote:
            qsig = self.signature(series)
            votes = (self.sig == qsig).sum(axis=1)
            by_votes = np.lexsort((self.og_ids, lbs, -votes))
            need = shortlist - int(chosen.sum())
            for i in by_votes:
                if need == 0:
                    break
                if not chosen[i]:
                    chosen[i] = True
                    need -= 1
        idx = np.nonzero(chosen)[0].astype(np.int64)
        return idx, lbs[idx], pivot_evals


def approx_knn(sketch: SketchIndex, distance,
               query: ObjectGraph | np.ndarray, k: int, search_budget: int,
               executor: Any = None
               ) -> list[tuple[float, ObjectGraph, Any]]:
    """Two-stage approximate k-NN over a :class:`SketchIndex`.

    At most ``search_budget`` exact distance evaluations are spent in
    total (pivot distances + rerank), floored at ``k + num_pivots`` so a
    degenerate budget still returns ``k`` hits.  With ``search_budget >=
    len(sketch) + num_pivots`` the search degenerates to an exact full
    scan: every row is shortlisted and pruning is bound-exact.  Hits are
    ``(distance, og, clip_ref)`` sorted by ``(distance, og_id)`` — the
    same contract as the exact paths.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if search_budget < 1:
        raise InvalidParameterError(
            f"search_budget must be >= 1, got {search_budget}"
        )
    series = as_series(query)
    n = len(sketch)
    with OBS.span("search.approx_knn", k=k, budget=search_budget) as sp:
        OBS.count("search.knn_queries")
        idx, lbs, pivot_evals = sketch.candidates(
            distance, series, search_budget, k
        )
        OBS.count("search.candidates_generated", len(idx))
        # Rerank in ascending (lower bound, og_id) order: the most
        # promising candidates seed the k-th best distance early, and
        # the sorted bounds make the prune a single prefix cut.
        order = np.lexsort((sketch.og_ids[idx], lbs))
        idx = idx[order]
        lbs = lbs[order]

        best: list[tuple[float, ObjectGraph, Any]] = []

        def kth() -> tuple[float, float]:
            if len(best) == k:
                return (best[-1][0], best[-1][1].og_id)
            return (float("inf"), float("inf"))

        evaluated = 0
        pruned = 0
        start = 0
        batch = sketch.config.rerank_batch
        while start < len(idx):
            bound = kth()[0]
            slack = (0.0 if math.isinf(bound)
                     else PRUNE_SLACK * (1.0 + abs(bound)))
            if lbs[start] > bound + slack:
                # Sorted ascending: every remaining candidate is
                # provably outside the current top-k.
                pruned = len(idx) - start
                break
            stop = min(len(idx), start + batch)
            while stop > start and lbs[stop - 1] > bound + slack:
                stop -= 1
            chunk = idx[start:stop]
            items = [sketch.series[int(i)] for i in chunk]
            if executor is not None:
                dists = executor.one_vs_many(distance, series, items)
            else:
                dists = one_vs_many(distance, series, items)
            evaluated += len(chunk)
            for i, d in zip(chunk, dists):
                d = float(d)
                og, ref = sketch.records[int(i)]
                if (d, og.og_id) < kth():
                    _insort(best, (d, og, ref))
                    if len(best) > k:
                        best.pop()
            start = stop
        OBS.count("search.distances_computed", evaluated + pivot_evals)
        OBS.count("search.candidates_pruned", pruned)
        OBS.count("search.distances_saved",
                  max(0, n - evaluated - pivot_evals))
        sp.set(hits=len(best), evaluated=evaluated, pruned=pruned)
        return best


def _insort(best: list, entry: tuple) -> None:
    """Insert ``entry`` into ``best`` ordered by ``(distance, og_id)``."""
    key = (entry[0], entry[1].og_id)
    lo, hi = 0, len(best)
    while lo < hi:
        mid = (lo + hi) // 2
        if (best[mid][0], best[mid][1].og_id) < key:
            lo = mid + 1
        else:
            hi = mid
    best.insert(lo, entry)


def sketch_meta_json(sketch: SketchIndex) -> str:
    """Serializable sketch metadata (config + bbox) for persistence."""
    lo, hi = sketch.bbox if sketch.bbox is not None else (None, None)
    return json.dumps({
        "config": sketch.config.to_dict(),
        "bbox_lo": None if lo is None else [float(v) for v in lo],
        "bbox_hi": None if hi is None else [float(v) for v in hi],
    })


def sketch_from_meta(meta_json: str) -> SketchIndex:
    """Empty :class:`SketchIndex` restored from :func:`sketch_meta_json`.

    The caller fills pivots and rows (see
    :mod:`repro.storage.serialize`).
    """
    meta = json.loads(meta_json)
    sketch = SketchIndex(SketchConfig(**meta["config"]))
    if meta.get("bbox_lo") is not None:
        sketch.bbox = (
            np.asarray(meta["bbox_lo"], dtype=np.float64),
            np.asarray(meta["bbox_hi"], dtype=np.float64),
        )
    return sketch
