"""Video segment container.

Frames are ``(T, H, W, 3)`` uint8 arrays — the only representation the
pipeline needs.  NPZ persistence replaces video-codec IO, which the
evaluation never depends on.
"""

from __future__ import annotations

import os
from typing import Iterator

import numpy as np

from repro.errors import InvalidParameterError, StorageError


class VideoSegment:
    """A contiguous run of frames plus timing metadata."""

    def __init__(self, frames: np.ndarray, fps: float = 10.0,
                 name: str = "segment"):
        frames = np.asarray(frames)
        if frames.ndim != 4 or frames.shape[3] != 3:
            raise InvalidParameterError(
                f"frames must have shape (T, H, W, 3), got {frames.shape}"
            )
        if frames.shape[0] == 0:
            raise InvalidParameterError("video segment must contain frames")
        if fps <= 0:
            raise InvalidParameterError(f"fps must be positive, got {fps}")
        self.frames = frames.astype(np.uint8, copy=False)
        self.fps = float(fps)
        self.name = name

    @property
    def num_frames(self) -> int:
        """Number of frames ``T``."""
        return self.frames.shape[0]

    @property
    def height(self) -> int:
        """Frame height in pixels."""
        return self.frames.shape[1]

    @property
    def width(self) -> int:
        """Frame width in pixels."""
        return self.frames.shape[2]

    @property
    def duration_seconds(self) -> float:
        """Wall-clock duration implied by the frame rate."""
        return self.num_frames / self.fps

    def frame(self, index: int) -> np.ndarray:
        """The ``(H, W, 3)`` frame at ``index``."""
        return self.frames[index]

    def __len__(self) -> int:
        return self.num_frames

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.frames)

    def slice(self, start: int, stop: int) -> "VideoSegment":
        """Sub-segment ``[start, stop)`` sharing the underlying buffer."""
        if not 0 <= start < stop <= self.num_frames:
            raise InvalidParameterError(
                f"invalid slice [{start}, {stop}) for {self.num_frames} frames"
            )
        return VideoSegment(self.frames[start:stop], self.fps,
                            name=f"{self.name}[{start}:{stop}]")

    def save_npz(self, path: str | os.PathLike) -> None:
        """Persist frames + metadata as compressed NPZ."""
        try:
            np.savez_compressed(path, frames=self.frames, fps=self.fps,
                                name=np.array(self.name))
        except OSError as exc:
            raise StorageError(f"cannot write video to {path}: {exc}") from exc

    @classmethod
    def load_npz(cls, path: str | os.PathLike) -> "VideoSegment":
        """Load a segment previously written by :meth:`save_npz`."""
        try:
            with np.load(path, allow_pickle=False) as data:
                return cls(data["frames"], float(data["fps"]),
                           name=str(data["name"]))
        except (OSError, KeyError, ValueError) as exc:
            raise StorageError(f"cannot read video from {path}: {exc}") from exc

    def __repr__(self) -> str:
        return (
            f"VideoSegment(name={self.name!r}, frames={self.num_frames}, "
            f"size={self.width}x{self.height}, fps={self.fps:g})"
        )
