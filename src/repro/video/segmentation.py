"""Region segmentation — the EDISON substitute.

The paper segments each frame with EDISON (mean-shift based, Comaniciu &
Meer), chosen because it is stable across small frame-to-frame changes.
:class:`MeanShiftSegmenter` reimplements the same pipeline in pure numpy:

1. *mean-shift filtering* in the joint spatial-range domain (flat kernel):
   every pixel's color iteratively moves to the mean of spatially-near
   pixels whose color lies within the range bandwidth;
2. *clustering*: 4-connected pixels whose filtered colors differ by less
   than the range bandwidth are merged into regions (union-find);
3. *pruning*: regions below ``min_region_size`` are absorbed into the most
   color-similar adjacent region.

:class:`GridSegmenter` is a fast color-quantizing fallback for large
parameter sweeps; it shares steps 2-3.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError, SegmentationError
from repro.graph.rag import RegionAdjacencyGraph
from repro.video.color import rgb_to_luv
from repro.video.regions import rag_from_labels


class _UnionFind:
    """Array-backed union-find with path halving, for pixel labeling."""

    def __init__(self, n: int):
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, i: int) -> int:
        parent = self.parent
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(self, i: int, j: int) -> None:
        ri, rj = self.find(i), self.find(j)
        if ri != rj:
            self.parent[rj] = ri


def _connected_components(features: np.ndarray, threshold: float) -> np.ndarray:
    """Label 4-connected pixels whose feature distance is <= threshold.

    ``features`` is ``(H, W, C)``; returns ``(H, W)`` int labels compacted
    to ``0..R-1``.
    """
    h, w = features.shape[:2]
    uf = _UnionFind(h * w)
    flat = features.reshape(h * w, -1)

    def link(idx_a: np.ndarray, idx_b: np.ndarray) -> None:
        diff = flat[idx_a] - flat[idx_b]
        close = np.sqrt(np.sum(diff * diff, axis=1)) <= threshold
        for a, b in zip(idx_a[close], idx_b[close]):
            uf.union(int(a), int(b))

    idx = np.arange(h * w).reshape(h, w)
    link(idx[:, :-1].ravel(), idx[:, 1:].ravel())
    link(idx[:-1, :].ravel(), idx[1:, :].ravel())

    roots = np.array([uf.find(i) for i in range(h * w)], dtype=np.int64)
    _, labels = np.unique(roots, return_inverse=True)
    return labels.reshape(h, w).astype(np.int64)


def _merge_small_regions(labels: np.ndarray, features: np.ndarray,
                         min_size: int, max_passes: int = 10) -> np.ndarray:
    """Absorb regions smaller than ``min_size`` into their most
    color-similar 4-connected neighbor (EDISON's pruning step)."""
    labels = labels.copy()
    flat_feat = features.reshape(-1, features.shape[-1])
    for _ in range(max_passes):
        flat = labels.ravel()
        ids, inverse = np.unique(flat, return_inverse=True)
        counts = np.bincount(inverse)
        if counts.min() >= min_size or len(ids) <= 1:
            break
        sums = np.stack(
            [np.bincount(inverse, weights=flat_feat[:, c])
             for c in range(flat_feat.shape[1])], axis=1
        )
        means = sums / counts[:, None]
        id_to_pos = {int(r): k for k, r in enumerate(ids)}
        # Neighbor sets via horizontal/vertical label transitions.
        neighbors: dict[int, set[int]] = {int(r): set() for r in ids}
        for a, b in _label_transitions(labels):
            neighbors[a].add(b)
            neighbors[b].add(a)
        remap = {}
        for k, rid in enumerate(ids):
            if counts[k] >= min_size:
                continue
            nbrs = neighbors[int(rid)]
            if not nbrs:
                continue
            best = min(
                nbrs,
                key=lambda n: float(
                    np.linalg.norm(means[k] - means[id_to_pos[n]])
                ),
            )
            remap[int(rid)] = best
        if not remap:
            break
        # Resolve chains (small -> small -> big) conservatively per pass.
        lut = np.array(
            [remap.get(int(r), int(r)) for r in ids], dtype=np.int64
        )
        labels = lut[inverse].reshape(labels.shape)
    # Compact labels.
    _, compact = np.unique(labels.ravel(), return_inverse=True)
    return compact.reshape(labels.shape).astype(np.int64)


def _label_transitions(labels: np.ndarray) -> set[tuple[int, int]]:
    """Unordered pairs of 4-adjacent distinct labels."""
    pairs: set[tuple[int, int]] = set()
    for a, b in ((labels[:, :-1], labels[:, 1:]),
                 (labels[:-1, :], labels[1:, :])):
        a = a.ravel()
        b = b.ravel()
        mask = a != b
        lo = np.minimum(a[mask], b[mask])
        hi = np.maximum(a[mask], b[mask])
        pairs.update(zip(lo.tolist(), hi.tolist()))
    return pairs


class Segmenter(abc.ABC):
    """Interface: a frame in, a label image out."""

    @abc.abstractmethod
    def segment(self, image: np.ndarray) -> np.ndarray:
        """Return an ``(H, W)`` int label image for an ``(H, W, 3)`` frame."""

    def build_rag(self, image: np.ndarray,
                  frame_index: int = 0) -> RegionAdjacencyGraph:
        """Segment a frame and build its RAG (Definition 1)."""
        labels = self.segment(image)
        return rag_from_labels(image, labels, frame_index)


@dataclass
class MeanShiftSegmenter(Segmenter):
    """Pure-numpy mean-shift segmentation (EDISON substitute).

    Parameters mirror EDISON: ``spatial_bandwidth`` (pixel window radius),
    ``range_bandwidth`` (color radius, LUV units when ``use_luv``),
    ``min_region_size`` (pruning threshold) and ``max_iterations`` of the
    filtering stage.
    """

    spatial_bandwidth: int = 4
    range_bandwidth: float = 8.0
    min_region_size: int = 20
    max_iterations: int = 5
    use_luv: bool = True

    def __post_init__(self) -> None:
        if self.spatial_bandwidth < 1:
            raise InvalidParameterError("spatial_bandwidth must be >= 1")
        if self.range_bandwidth <= 0:
            raise InvalidParameterError("range_bandwidth must be positive")
        if self.min_region_size < 1:
            raise InvalidParameterError("min_region_size must be >= 1")

    def _filter(self, features: np.ndarray) -> np.ndarray:
        """Mean-shift filtering with a flat kernel, vectorized by shifting
        the whole image across the spatial window."""
        h, w, c = features.shape
        radius = self.spatial_bandwidth
        hr2 = self.range_bandwidth ** 2
        current = features.copy()
        offsets = [
            (dy, dx)
            for dy in range(-radius, radius + 1)
            for dx in range(-radius, radius + 1)
            if dy * dy + dx * dx <= radius * radius
        ]
        for _ in range(self.max_iterations):
            acc = np.zeros_like(current)
            cnt = np.zeros((h, w, 1), dtype=np.float64)
            for dy, dx in offsets:
                shifted = np.roll(np.roll(current, dy, axis=0), dx, axis=1)
                # Invalidate wrap-around rows/cols.
                valid = np.ones((h, w), dtype=bool)
                if dy > 0:
                    valid[:dy, :] = False
                elif dy < 0:
                    valid[dy:, :] = False
                if dx > 0:
                    valid[:, :dx] = False
                elif dx < 0:
                    valid[:, dx:] = False
                diff = shifted - current
                in_range = np.sum(diff * diff, axis=2) <= hr2
                mask = (in_range & valid)[..., None].astype(np.float64)
                acc += shifted * mask
                cnt += mask
            new = acc / np.maximum(cnt, 1.0)
            if np.max(np.abs(new - current)) < 0.05:
                current = new
                break
            current = new
        return current

    def segment(self, image: np.ndarray) -> np.ndarray:
        """Mean-shift filter, cluster and prune one ``(H, W, 3)`` frame."""
        image = np.asarray(image)
        if image.ndim != 3 or image.shape[2] != 3:
            raise SegmentationError(
                f"expected (H, W, 3) frame, got shape {image.shape}"
            )
        features = rgb_to_luv(image) if self.use_luv else image.astype(np.float64)
        filtered = self._filter(features)
        labels = _connected_components(filtered, self.range_bandwidth)
        return _merge_small_regions(labels, filtered, self.min_region_size)


@dataclass
class GridSegmenter(Segmenter):
    """Fast color-quantization segmenter for large sweeps.

    Quantizes each channel into ``levels`` bins, labels connected
    components of equal quantized color, then prunes small regions.  Far
    cheaper than mean shift and adequate for the flat-colored synthetic
    videos of :mod:`repro.datasets.real`.
    """

    levels: int = 8
    min_region_size: int = 20

    def __post_init__(self) -> None:
        if self.levels < 2:
            raise InvalidParameterError(f"levels must be >= 2, got {self.levels}")
        if self.min_region_size < 1:
            raise InvalidParameterError("min_region_size must be >= 1")

    def segment(self, image: np.ndarray) -> np.ndarray:
        """Quantize, component-label and prune one ``(H, W, 3)`` frame."""
        image = np.asarray(image)
        if image.ndim != 3 or image.shape[2] != 3:
            raise SegmentationError(
                f"expected (H, W, 3) frame, got shape {image.shape}"
            )
        step = 256.0 / self.levels
        quantized = np.floor(image.astype(np.float64) / step)
        labels = _connected_components(quantized, 0.0)
        return _merge_small_regions(labels, image.astype(np.float64),
                                    self.min_region_size)
