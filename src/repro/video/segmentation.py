"""Region segmentation — the EDISON substitute.

The paper segments each frame with EDISON (mean-shift based, Comaniciu &
Meer), chosen because it is stable across small frame-to-frame changes.
:class:`MeanShiftSegmenter` reimplements the same pipeline in pure numpy:

1. *mean-shift filtering* in the joint spatial-range domain (flat kernel):
   every pixel's color iteratively moves to the mean of spatially-near
   pixels whose color lies within the range bandwidth;
2. *clustering*: 4-connected pixels whose filtered colors differ by less
   than the range bandwidth are merged into regions;
3. *pruning*: regions below ``min_region_size`` are absorbed into the most
   color-similar adjacent region.

:class:`GridSegmenter` is a fast color-quantizing fallback for large
parameter sweeps; it shares steps 2-3.

Every step is fully vectorized.  Component labeling uses an iterative
min-label propagation sweep (pointer jumping over the flat pixel array)
instead of a per-pixel Python union-find; the partition it computes is
identical (same 4-connectivity relation), only the pre-compaction
representative per component differs (component minimum instead of a
union-find root), so compacted labels can be a permutation of the old
implementation's.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError, SegmentationError
from repro.graph.rag import RegionAdjacencyGraph
from repro.observability import OBS
from repro.video.color import rgb_to_luv
from repro.video.regions import adjacent_label_pairs, rag_from_labels

#: Bits per channel for the exact-equality fast path (3 x 21 = 63 bits).
_ENCODE_BITS = 21


def _encode_exact(features: np.ndarray) -> np.ndarray | None:
    """Pack an integer-valued ``(..., C)`` feature image into one int64
    channel, or ``None`` when the values don't fit.

    Used by the threshold-0 fast path: two pixels are 4-connected iff
    their encoded values are equal, which replaces a per-pair float norm
    (with ``sqrt``) by one integer comparison.
    """
    if features.ndim < 2 or features.shape[-1] > 3:
        return None
    ints = features.astype(np.int64)
    if (ints != features).any() or ints.min() < 0 \
            or ints.max() >= (1 << _ENCODE_BITS):
        return None
    encoded = ints[..., 0]
    for c in range(1, features.shape[-1]):
        encoded = (encoded << _ENCODE_BITS) | ints[..., c]
    return encoded


def _edge_masks(features: np.ndarray, threshold: float
                ) -> tuple[np.ndarray, np.ndarray]:
    """4-connectivity masks of a ``(..., H, W, C)`` feature image.

    Returns ``(right_ok, down_ok)`` boolean arrays of shapes
    ``(..., H, W-1)`` and ``(..., H-1, W)``: whether each pixel is
    connected to its right / lower neighbor.  With ``threshold <= 0`` the
    float-norm predicate degenerates to exact equality, which is computed
    without any float arithmetic (integer-encoded when possible).
    """
    if threshold <= 0.0:
        encoded = _encode_exact(features)
        if encoded is not None:
            right_ok = encoded[..., :, :-1] == encoded[..., :, 1:]
            down_ok = encoded[..., :-1, :] == encoded[..., 1:, :]
            return right_ok, down_ok
        right_ok = np.all(
            features[..., :, :-1, :] == features[..., :, 1:, :], axis=-1
        )
        down_ok = np.all(
            features[..., :-1, :, :] == features[..., 1:, :, :], axis=-1
        )
        return right_ok, down_ok
    dh = features[..., :, :-1, :] - features[..., :, 1:, :]
    right_ok = np.sqrt(np.sum(dh * dh, axis=-1)) <= threshold
    dv = features[..., :-1, :, :] - features[..., 1:, :, :]
    down_ok = np.sqrt(np.sum(dv * dv, axis=-1)) <= threshold
    return right_ok, down_ok


def _propagate_min_labels(labels: np.ndarray, right_ok: np.ndarray,
                          down_ok: np.ndarray) -> np.ndarray:
    """Connected components by min-label propagation + pointer jumping.

    ``labels`` is an ``(H, W)`` (or ``(B, H, W)``) int64 array of unique
    initial labels (flat pixel indices).  Each round every pixel takes the
    minimum label over itself and its 4-connected neighbors, then the
    label array is treated as a pointer forest (``label`` is a pixel
    index) and compressed by repeated gathers (``f = f[f]``) until stable.
    The fixpoint assigns every pixel the minimum initial label of its
    component — the same partition a union-find would produce.  Rounds
    are O(log diameter) thanks to the pointer jumping, every operation a
    whole-array numpy primitive.
    """
    sentinel = labels.size  # larger than any label
    rounds = 0
    while True:
        rounds += 1
        m = labels
        cand = m.copy()
        np.minimum(cand[..., :, :-1],
                   np.where(right_ok, m[..., :, 1:], sentinel),
                   out=cand[..., :, :-1])
        np.minimum(cand[..., :, 1:],
                   np.where(right_ok, m[..., :, :-1], sentinel),
                   out=cand[..., :, 1:])
        np.minimum(cand[..., :-1, :],
                   np.where(down_ok, m[..., 1:, :], sentinel),
                   out=cand[..., :-1, :])
        np.minimum(cand[..., 1:, :],
                   np.where(down_ok, m[..., :-1, :], sentinel),
                   out=cand[..., 1:, :])
        flat = cand.ravel()
        prev = m.ravel()
        flat = np.minimum(flat, prev[flat])
        while True:
            hopped = flat[flat]
            if np.array_equal(hopped, flat):
                break
            flat = hopped
        if np.array_equal(flat, prev):
            break
        labels = flat.reshape(labels.shape)
    if OBS.enabled:
        OBS.count("segmentation.cc_rounds", rounds)
    return labels


def _connected_components(features: np.ndarray, threshold: float) -> np.ndarray:
    """Label 4-connected pixels whose feature distance is <= threshold.

    ``features`` is ``(H, W, C)``; returns ``(H, W)`` int labels compacted
    to ``0..R-1``.  Pure numpy: min-label propagation instead of the old
    per-pixel Python union-find (same partition, labels possibly permuted).
    """
    h, w = features.shape[:2]
    right_ok, down_ok = _edge_masks(features, threshold)
    labels = np.arange(h * w, dtype=np.int64).reshape(h, w)
    labels = _propagate_min_labels(labels, right_ok, down_ok)
    _, compact = np.unique(labels.ravel(), return_inverse=True)
    return compact.reshape(h, w).astype(np.int64)


def _region_means(inverse: np.ndarray, flat_feat: np.ndarray,
                  counts: np.ndarray) -> np.ndarray:
    """Per-region feature means via one bincount per channel."""
    sums = np.stack(
        [np.bincount(inverse, weights=flat_feat[:, c])
         for c in range(flat_feat.shape[1])], axis=1
    )
    return sums / counts[:, None]


def _merge_small_regions(labels: np.ndarray, features: np.ndarray,
                         min_size: int, max_passes: int = 10) -> np.ndarray:
    """Absorb regions smaller than ``min_size`` into their most
    color-similar 4-connected neighbor (EDISON's pruning step).

    Fully vectorized: neighbor relations come from
    :func:`~repro.video.regions.adjacent_label_pairs` and the best
    neighbor per small region is an argmin over the deduplicated pair
    list (ties broken towards the smaller region label).
    """
    labels = labels.copy()
    flat_feat = features.reshape(-1, features.shape[-1])
    for _ in range(max_passes):
        flat = labels.ravel()
        ids, inverse = np.unique(flat, return_inverse=True)
        counts = np.bincount(inverse)
        if counts.min() >= min_size or len(ids) <= 1:
            break
        means = _region_means(inverse, flat_feat, counts)
        pos = inverse.reshape(labels.shape)
        pairs = adjacent_label_pairs(pos)  # (P, 2) positions, a < b
        if len(pairs) == 0:
            break
        # Both directions: each region sees every neighbor once.
        a = np.concatenate([pairs[:, 0], pairs[:, 1]])
        b = np.concatenate([pairs[:, 1], pairs[:, 0]])
        small = counts[a] < min_size
        a, b = a[small], b[small]
        if len(a) == 0:
            break
        diff = means[a] - means[b]
        dist = np.sqrt(np.sum(diff * diff, axis=1))
        # First row per small region after sorting by (region, distance,
        # neighbor label) is its best (closest-color) neighbor.
        order = np.lexsort((ids[b], dist, a))
        a, b = a[order], b[order]
        first = np.ones(len(a), dtype=bool)
        first[1:] = a[1:] != a[:-1]
        lut = np.arange(len(ids), dtype=np.int64)
        lut[a[first]] = b[first]
        if OBS.enabled:
            OBS.count("segmentation.regions_merged", int(first.sum()))
        # Resolve chains (small -> small -> big) conservatively per pass.
        labels = ids[lut[inverse]].reshape(labels.shape)
    # Compact labels.
    _, compact = np.unique(labels.ravel(), return_inverse=True)
    return compact.reshape(labels.shape).astype(np.int64)


def _label_transitions(labels: np.ndarray) -> set[tuple[int, int]]:
    """Unordered pairs of 4-adjacent distinct labels."""
    pairs = adjacent_label_pairs(labels)
    return set(map(tuple, pairs.tolist()))


class Segmenter(abc.ABC):
    """Interface: a frame in, a label image out."""

    @abc.abstractmethod
    def segment(self, image: np.ndarray) -> np.ndarray:
        """Return an ``(H, W)`` int label image for an ``(H, W, 3)`` frame."""

    def build_rag(self, image: np.ndarray,
                  frame_index: int = 0) -> RegionAdjacencyGraph:
        """Segment a frame and build its RAG (Definition 1)."""
        labels = self.segment(image)
        return rag_from_labels(image, labels, frame_index)

    def build_rags(self, images, first_index: int = 0
                   ) -> list[RegionAdjacencyGraph]:
        """Segment a run of frames and build one RAG per frame.

        This is the unit of work of the frame-parallel ingestion engine:
        a worker receives a contiguous chunk of frames and returns their
        RAGs.  The default processes frames independently, one at a time,
        so results are identical to per-frame :meth:`build_rag` calls at
        any chunk boundary.
        """
        return [
            self.build_rag(image, first_index + k)
            for k, image in enumerate(images)
        ]


def _validate_frame_shape(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3:
        raise SegmentationError(
            f"expected (H, W, 3) frame, got shape {image.shape}"
        )
    return image


@dataclass
class MeanShiftSegmenter(Segmenter):
    """Pure-numpy mean-shift segmentation (EDISON substitute).

    Parameters mirror EDISON: ``spatial_bandwidth`` (pixel window radius),
    ``range_bandwidth`` (color radius, LUV units when ``use_luv``),
    ``min_region_size`` (pruning threshold) and ``max_iterations`` of the
    filtering stage.
    """

    spatial_bandwidth: int = 4
    range_bandwidth: float = 8.0
    min_region_size: int = 20
    max_iterations: int = 5
    use_luv: bool = True

    #: Pad value for out-of-frame pixels in the filtering stage.  Large
    #: enough that a padded pixel can never fall within the range
    #: bandwidth of a real color (LUV/RGB values are bounded by a few
    #: hundred), small enough that ``(pad - color)**2`` stays finite —
    #: padded contributions are then masked to exactly 0.0, like the
    #: wrap-around rows the old ``np.roll`` formulation invalidated.
    _PAD = 1.0e6

    def __post_init__(self) -> None:
        if self.spatial_bandwidth < 1:
            raise InvalidParameterError("spatial_bandwidth must be >= 1")
        if self.range_bandwidth <= 0:
            raise InvalidParameterError("range_bandwidth must be positive")
        if self.min_region_size < 1:
            raise InvalidParameterError("min_region_size must be >= 1")

    def _offsets(self) -> list[tuple[int, int]]:
        radius = self.spatial_bandwidth
        return [
            (dy, dx)
            for dy in range(-radius, radius + 1)
            for dx in range(-radius, radius + 1)
            if dy * dy + dx * dx <= radius * radius
        ]

    @staticmethod
    def _valid_masks(h: int, w: int, offsets: list[tuple[int, int]]
                     ) -> dict[tuple[int, int], np.ndarray]:
        """In-bounds masks per window offset (shape-dependent only, so
        computed once per filter call rather than once per iteration)."""
        valids: dict[tuple[int, int], np.ndarray] = {}
        for dy, dx in offsets:
            valid = np.ones((h, w), dtype=bool)
            if dy > 0:
                valid[:dy, :] = False
            elif dy < 0:
                valid[dy:, :] = False
            if dx > 0:
                valid[:, :dx] = False
            elif dx < 0:
                valid[:, dx:] = False
            valids[(dy, dx)] = valid
        return valids

    def _filter(self, features: np.ndarray) -> np.ndarray:
        """Mean-shift filtering with a flat kernel.

        The spatial window is swept with slices of one padded copy of the
        image per iteration — no per-offset array copies (the previous
        formulation paid two ``np.roll`` copies per offset per iteration).
        Out-of-frame samples hold :attr:`_PAD`, which can never be within
        the range bandwidth, so the boundary handling is unchanged.
        """
        h, w, c = features.shape
        radius = self.spatial_bandwidth
        hr2 = self.range_bandwidth ** 2
        offsets = self._offsets()
        valids = self._valid_masks(h, w, offsets)
        current = features.copy()
        padded = np.empty((h + 2 * radius, w + 2 * radius, c),
                          dtype=np.float64)
        iterations = 0
        for _ in range(self.max_iterations):
            iterations += 1
            padded.fill(self._PAD)
            padded[radius:radius + h, radius:radius + w] = current
            acc = np.zeros_like(current)
            cnt = np.zeros((h, w, 1), dtype=np.float64)
            for dy, dx in offsets:
                # The pixel whose *old* position is (y-dy, x-dx), i.e.
                # the same sample np.roll(current, (dy, dx)) would align.
                shifted = padded[radius - dy:radius - dy + h,
                                 radius - dx:radius - dx + w]
                diff = shifted - current
                in_range = np.sum(diff * diff, axis=2) <= hr2
                mask = (in_range & valids[(dy, dx)])[..., None]
                mask = mask.astype(np.float64)
                acc += shifted * mask
                cnt += mask
            new = acc / np.maximum(cnt, 1.0)
            if np.max(np.abs(new - current)) < 0.05:
                current = new
                if OBS.enabled and iterations < self.max_iterations:
                    OBS.count("meanshift.early_exits")
                break
            current = new
        return current

    def segment(self, image: np.ndarray) -> np.ndarray:
        """Mean-shift filter, cluster and prune one ``(H, W, 3)`` frame."""
        image = _validate_frame_shape(image)
        features = rgb_to_luv(image) if self.use_luv else image.astype(np.float64)
        filtered = self._filter(features)
        labels = _connected_components(filtered, self.range_bandwidth)
        return _merge_small_regions(labels, filtered, self.min_region_size)


@dataclass
class GridSegmenter(Segmenter):
    """Fast color-quantization segmenter for large sweeps.

    Quantizes each channel into ``levels`` bins, labels connected
    components of equal quantized color, then prunes small regions.  Far
    cheaper than mean shift and adequate for the flat-colored synthetic
    videos of :mod:`repro.datasets.real`.
    """

    levels: int = 8
    min_region_size: int = 20

    def __post_init__(self) -> None:
        if self.levels < 2:
            raise InvalidParameterError(f"levels must be >= 2, got {self.levels}")
        if self.min_region_size < 1:
            raise InvalidParameterError("min_region_size must be >= 1")

    def segment(self, image: np.ndarray) -> np.ndarray:
        """Quantize, component-label and prune one ``(H, W, 3)`` frame.

        Quantized colors are compared by exact integer equality inside
        :func:`_connected_components` (threshold 0 selects the encoded
        int64 fast path — no per-pair float norms).
        """
        image = _validate_frame_shape(image)
        step = 256.0 / self.levels
        quantized = np.floor(image.astype(np.float64) / step)
        labels = _connected_components(quantized, 0.0)
        return _merge_small_regions(labels, image.astype(np.float64),
                                    self.min_region_size)
