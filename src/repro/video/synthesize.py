"""Procedural surveillance-video renderer.

Substitutes for the paper's real camera streams (Table 1): moving *actors*
(vehicles, person-like stacked shapes) are composited over a static
*background* of flat colored zones, producing ``(T, H, W, 3)`` frame arrays
that exercise the full segmentation -> RAG -> STRG -> index pipeline.

The renderer controls exactly the properties the evaluation depends on —
trajectory shapes, object part structure (so ORG merging has work to do)
and background staticity (so BG elimination pays off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.video.frames import VideoSegment

#: A trajectory maps a frame index to the actor's center ``(x, y)``.
Trajectory = Callable[[int], tuple[float, float]]

#: An actor part: ``(dx, dy, width, height, (r, g, b))`` relative to center.
Part = tuple[float, float, float, float, tuple[int, int, int]]


def linear_trajectory(start: tuple[float, float], end: tuple[float, float],
                      num_frames: int) -> Trajectory:
    """Straight-line motion from ``start`` to ``end`` over ``num_frames``."""
    if num_frames < 1:
        raise InvalidParameterError("num_frames must be >= 1")

    def position(t: int) -> tuple[float, float]:
        alpha = t / max(num_frames - 1, 1)
        alpha = min(max(alpha, 0.0), 1.0)
        return (
            start[0] + alpha * (end[0] - start[0]),
            start[1] + alpha * (end[1] - start[1]),
        )

    return position


def uturn_trajectory(start: tuple[float, float], turn: tuple[float, float],
                     num_frames: int) -> Trajectory:
    """Out-and-back motion: ``start`` -> ``turn`` -> ``start``."""
    if num_frames < 2:
        raise InvalidParameterError("num_frames must be >= 2")
    half = num_frames // 2
    leg_out = linear_trajectory(start, turn, half)
    leg_back = linear_trajectory(turn, start, num_frames - half)

    def position(t: int) -> tuple[float, float]:
        if t < half:
            return leg_out(t)
        return leg_back(t - half)

    return position


def make_vehicle(color: tuple[int, int, int] = (200, 30, 30),
                 length: float = 26.0, height: float = 12.0) -> list[Part]:
    """A two-part vehicle: body plus a contrasting cabin.

    Two differently colored parts ensure segmentation splits the object,
    exercising the ORG -> OG merging of Section 2.3.2 (Figure 3).
    """
    cabin = tuple(min(255, c + 70) for c in color)
    return [
        (0.0, 0.0, length, height, color),
        (0.0, -height * 0.7, length * 0.5, height * 0.5, cabin),
    ]


def make_person(shirt: tuple[int, int, int] = (40, 90, 200),
                pants: tuple[int, int, int] = (60, 60, 60),
                skin: tuple[int, int, int] = (220, 180, 150),
                scale: float = 1.0) -> list[Part]:
    """A three-part person: head, torso, legs (cf. Figure 3's example of a
    body segmented into several regions)."""
    return [
        (0.0, -11.0 * scale, 6.0 * scale, 6.0 * scale, skin),
        (0.0, -2.0 * scale, 10.0 * scale, 10.0 * scale, shirt),
        (0.0, 8.0 * scale, 8.0 * scale, 10.0 * scale, pants),
    ]


@dataclass
class Actor:
    """A moving object: a set of colored parts following a trajectory."""

    trajectory: Trajectory
    parts: list[Part]
    start_frame: int = 0
    end_frame: int | None = None
    name: str = "actor"

    def active(self, t: int) -> bool:
        """Whether the actor is on screen at frame ``t``."""
        if t < self.start_frame:
            return False
        return self.end_frame is None or t <= self.end_frame

    def paint(self, canvas: np.ndarray, t: int) -> None:
        """Composite the actor into frame ``t`` of ``canvas`` in place."""
        if not self.active(t):
            return
        cx, cy = self.trajectory(t - self.start_frame)
        h, w = canvas.shape[:2]
        for dx, dy, pw, ph, color in self.parts:
            x0 = int(round(cx + dx - pw / 2.0))
            y0 = int(round(cy + dy - ph / 2.0))
            x1 = int(round(cx + dx + pw / 2.0))
            y1 = int(round(cy + dy + ph / 2.0))
            x0, x1 = max(x0, 0), min(x1, w)
            y0, y1 = max(y0, 0), min(y1, h)
            if x0 < x1 and y0 < y1:
                canvas[y0:y1, x0:x1] = color


@dataclass
class BackgroundSpec:
    """Static background: a base color plus flat rectangular zones."""

    width: int = 160
    height: int = 120
    base_color: tuple[int, int, int] = (110, 110, 110)
    zones: list[tuple[int, int, int, int, tuple[int, int, int]]] = field(
        default_factory=list
    )

    def render(self) -> np.ndarray:
        """The ``(H, W, 3)`` uint8 background frame."""
        canvas = np.empty((self.height, self.width, 3), dtype=np.uint8)
        canvas[:] = self.base_color
        for x0, y0, x1, y1, color in self.zones:
            canvas[y0:y1, x0:x1] = color
        return canvas


class SceneRenderer:
    """Renders a background plus actors into a :class:`VideoSegment`.

    Optional degradations for robustness testing:

    - ``noise_std``: per-pixel Gaussian sensor noise;
    - ``lighting_drift``: maximum global brightness offset, ramped
      linearly over the video (slow illumination change — the situation
      the paper says EDISON tolerates);
    - ``camera_jitter``: per-frame uniform translation of the whole scene
      by up to the given number of pixels (camera shake).
    """

    def __init__(self, background: BackgroundSpec,
                 actors: Sequence[Actor] = (),
                 noise_std: float = 0.0,
                 lighting_drift: float = 0.0,
                 camera_jitter: int = 0,
                 rng: np.random.Generator | None = None):
        if noise_std < 0:
            raise InvalidParameterError(f"noise_std must be >= 0, got {noise_std}")
        if camera_jitter < 0:
            raise InvalidParameterError(
                f"camera_jitter must be >= 0, got {camera_jitter}"
            )
        self.background = background
        self.actors = list(actors)
        self.noise_std = noise_std
        self.lighting_drift = float(lighting_drift)
        self.camera_jitter = int(camera_jitter)
        self.rng = rng or np.random.default_rng(0)

    def add_actor(self, actor: Actor) -> None:
        """Register another actor."""
        self.actors.append(actor)

    def render(self, num_frames: int, fps: float = 10.0,
               name: str = "synthetic") -> VideoSegment:
        """Render ``num_frames`` frames."""
        if num_frames < 1:
            raise InvalidParameterError("num_frames must be >= 1")
        base = self.background.render()
        frames = np.empty(
            (num_frames, base.shape[0], base.shape[1], 3), dtype=np.uint8
        )
        for t in range(num_frames):
            canvas = base.copy()
            for actor in self.actors:
                actor.paint(canvas, t)
            if self.camera_jitter > 0:
                dy, dx = self.rng.integers(
                    -self.camera_jitter, self.camera_jitter + 1, size=2
                )
                canvas = np.roll(np.roll(canvas, int(dy), axis=0),
                                 int(dx), axis=1)
            if self.lighting_drift != 0.0 or self.noise_std > 0:
                work = canvas.astype(np.float64)
                if self.lighting_drift != 0.0:
                    ramp = t / max(num_frames - 1, 1)
                    work += self.lighting_drift * ramp
                if self.noise_std > 0:
                    work += self.rng.normal(0.0, self.noise_std, work.shape)
                canvas = np.clip(work, 0, 255).astype(np.uint8)
            frames[t] = canvas
        return VideoSegment(frames, fps=fps, name=name)
