"""Region statistics, adjacency and RAG construction from label images.

A *label image* is an ``(H, W)`` int array assigning every pixel to a
region.  These helpers turn a segmented frame into the Region Adjacency
Graph of Definition 1.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SegmentationError
from repro.graph.attributes import NodeAttributes
from repro.graph.rag import RegionAdjacencyGraph


def region_statistics(image: np.ndarray, labels: np.ndarray
                      ) -> dict[int, NodeAttributes]:
    """Per-region size, mean color and centroid.

    ``image`` is ``(H, W, 3)``; ``labels`` is ``(H, W)`` int.  Regions are
    the distinct label values.  Vectorized with ``np.bincount``.
    """
    if image.shape[:2] != labels.shape:
        raise SegmentationError(
            f"image {image.shape[:2]} and labels {labels.shape} disagree"
        )
    flat = labels.ravel()
    if flat.size == 0:
        raise SegmentationError("empty label image")
    ids, inverse = np.unique(flat, return_inverse=True)
    counts = np.bincount(inverse)
    img = np.asarray(image, dtype=np.float64).reshape(-1, 3)
    color_sums = np.stack(
        [np.bincount(inverse, weights=img[:, c]) for c in range(3)], axis=1
    )
    h, w = labels.shape
    yy, xx = np.divmod(np.arange(flat.size), w)
    cx = np.bincount(inverse, weights=xx.astype(np.float64)) / counts
    cy = np.bincount(inverse, weights=yy.astype(np.float64)) / counts
    mean_colors = color_sums / counts[:, None]
    out: dict[int, NodeAttributes] = {}
    for k, rid in enumerate(ids):
        out[int(rid)] = NodeAttributes(
            size=int(counts[k]),
            color=tuple(mean_colors[k]),
            centroid=(float(cx[k]), float(cy[k])),
        )
    return out


def adjacent_label_pairs(labels: np.ndarray) -> np.ndarray:
    """Deduplicated 4-connected adjacency pairs of a label image.

    Returns a ``(P, 2)`` int64 array of unordered pairs ``(a, b)`` with
    ``a < b``, sorted lexicographically.  Fully vectorized: boundary
    edges are encoded as ``lo * K + hi`` single integers and deduplicated
    with one :func:`np.unique` — no Python-level set of tuples.
    """
    left = np.concatenate([labels[:, :-1].ravel(), labels[:-1, :].ravel()])
    right = np.concatenate([labels[:, 1:].ravel(), labels[1:, :].ravel()])
    diff = left != right
    left, right = left[diff], right[diff]
    if left.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    lo = np.minimum(left, right).astype(np.int64)
    hi = np.maximum(left, right).astype(np.int64)
    span = int(hi.max()) + 1
    codes = np.unique(lo * span + hi)
    return np.stack(np.divmod(codes, span), axis=1)


def region_adjacency(labels: np.ndarray) -> set[tuple[int, int]]:
    """4-connected adjacency between distinct regions of a label image.

    Returns unordered pairs ``(a, b)`` with ``a < b``.
    """
    return set(map(tuple, adjacent_label_pairs(labels).tolist()))


def rag_from_labels(image: np.ndarray, labels: np.ndarray,
                    frame_index: int = 0) -> RegionAdjacencyGraph:
    """Build the RAG of a segmented frame (Definition 1)."""
    regions = region_statistics(image, labels)
    adjacency = region_adjacency(labels)
    return RegionAdjacencyGraph.from_regions(regions, adjacency, frame_index)
