"""Color-space conversions.

Mean-shift segmentation (EDISON) operates in the perceptually uniform
CIE-LUV space, where Euclidean color distance approximates perceived
difference.  Conversions follow the standard sRGB -> XYZ -> LUV chain with
the D65 white point.
"""

from __future__ import annotations

import numpy as np

# sRGB -> XYZ linear transform (D65).
_RGB_TO_XYZ = np.array(
    [
        [0.412453, 0.357580, 0.180423],
        [0.212671, 0.715160, 0.072169],
        [0.019334, 0.119193, 0.950227],
    ]
)
_WHITE = _RGB_TO_XYZ @ np.ones(3)
_UN = 4.0 * _WHITE[0] / (_WHITE[0] + 15.0 * _WHITE[1] + 3.0 * _WHITE[2])
_VN = 9.0 * _WHITE[1] / (_WHITE[0] + 15.0 * _WHITE[1] + 3.0 * _WHITE[2])


def rgb_to_gray(image: np.ndarray) -> np.ndarray:
    """Luma grayscale (Rec. 601 weights), same dtype range as input."""
    img = np.asarray(image, dtype=np.float64)
    return img[..., 0] * 0.299 + img[..., 1] * 0.587 + img[..., 2] * 0.114


def rgb_to_luv(image: np.ndarray) -> np.ndarray:
    """Convert an ``(..., 3)`` uint8/float RGB image to CIE-LUV (float64).

    Input values are interpreted on the ``[0, 255]`` scale.  L* lies in
    ``[0, 100]``; u* and v* are roughly ``[-134, 220]``.
    """
    rgb = np.asarray(image, dtype=np.float64) / 255.0
    # sRGB gamma expansion.
    linear = np.where(rgb <= 0.04045, rgb / 12.92,
                      ((rgb + 0.055) / 1.055) ** 2.4)
    xyz = linear @ _RGB_TO_XYZ.T
    x, y, z = xyz[..., 0], xyz[..., 1], xyz[..., 2]
    denom = x + 15.0 * y + 3.0 * z
    with np.errstate(divide="ignore", invalid="ignore"):
        u_prime = np.where(denom > 0, 4.0 * x / denom, _UN)
        v_prime = np.where(denom > 0, 9.0 * y / denom, _VN)
    y_rel = y / _WHITE[1]
    lstar = np.where(y_rel > (6.0 / 29.0) ** 3,
                     116.0 * np.cbrt(y_rel) - 16.0,
                     (29.0 / 3.0) ** 3 * y_rel)
    ustar = 13.0 * lstar * (u_prime - _UN)
    vstar = 13.0 * lstar * (v_prime - _VN)
    return np.stack([lstar, ustar, vstar], axis=-1)
