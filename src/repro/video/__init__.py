"""Video substrate: frames, color models, segmentation and synthesis.

The paper's pipeline starts from raw frames segmented by EDISON (mean
shift).  Neither real camera streams nor OpenCV are available offline, so
this package provides:

- :mod:`repro.video.frames` — ``VideoSegment`` containers over numpy
  ``(T, H, W, 3)`` arrays with NPZ persistence.
- :mod:`repro.video.color` — RGB/LUV/grayscale conversions.
- :mod:`repro.video.segmentation` — a pure-numpy mean-shift segmenter
  (EDISON substitute) and a fast quantizing segmenter for large sweeps.
- :mod:`repro.video.regions` — region statistics, adjacency extraction and
  RAG construction from a label image.
- :mod:`repro.video.synthesize` — a procedural surveillance-video renderer
  (actors on static backgrounds) used to simulate the paper's Lab/Traffic
  streams.
"""

from repro.video.frames import VideoSegment
from repro.video.color import rgb_to_luv, rgb_to_gray
from repro.video.segmentation import (
    MeanShiftSegmenter,
    GridSegmenter,
    Segmenter,
)
from repro.video.regions import (
    region_statistics,
    region_adjacency,
    rag_from_labels,
)
from repro.video.shots import (
    ShotDetectorConfig,
    detect_shot_boundaries,
    split_into_shots,
)
from repro.video.visualize import (
    render_label_image,
    render_trajectories,
    describe_rag,
)
from repro.video.synthesize import (
    Actor,
    BackgroundSpec,
    SceneRenderer,
    linear_trajectory,
    uturn_trajectory,
    make_vehicle,
    make_person,
)

__all__ = [
    "VideoSegment",
    "rgb_to_luv",
    "rgb_to_gray",
    "MeanShiftSegmenter",
    "GridSegmenter",
    "Segmenter",
    "region_statistics",
    "region_adjacency",
    "rag_from_labels",
    "Actor",
    "BackgroundSpec",
    "SceneRenderer",
    "linear_trajectory",
    "uturn_trajectory",
    "make_vehicle",
    "make_person",
    "ShotDetectorConfig",
    "detect_shot_boundaries",
    "split_into_shots",
    "render_label_image",
    "render_trajectories",
    "describe_rag",
]
