"""Shot boundary detection and video parsing.

The paper's first issue (Section 1) is "how to efficiently parse a long
video into meaningful smaller units (i.e., shots or scenes)"; its STRG is
built per segment with a stable background.  This module provides the
standard color-histogram parser: consecutive-frame histogram differences
spike at cuts, and each resulting shot becomes one pipeline/STRG unit —
which is exactly what feeds the STRG-Index's multiple root records (one
per distinct background).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.video.frames import VideoSegment


@dataclass
class ShotDetectorConfig:
    """Histogram-difference cut detector parameters.

    ``bins`` per channel; ``threshold`` on the normalized L1 histogram
    difference in ``[0, 2]`` (0 = identical frames); ``min_shot_length``
    suppresses spurious double-cuts.
    """

    bins: int = 8
    threshold: float = 0.35
    min_shot_length: int = 5

    def __post_init__(self) -> None:
        if self.bins < 2:
            raise InvalidParameterError(f"bins must be >= 2, got {self.bins}")
        if not 0.0 < self.threshold <= 2.0:
            raise InvalidParameterError(
                f"threshold must be in (0, 2], got {self.threshold}"
            )
        if self.min_shot_length < 1:
            raise InvalidParameterError(
                f"min_shot_length must be >= 1, got {self.min_shot_length}"
            )


def color_histogram(frame: np.ndarray, bins: int = 8) -> np.ndarray:
    """Normalized joint per-channel color histogram, shape ``(3 * bins,)``."""
    frame = np.asarray(frame)
    histograms = []
    for channel in range(3):
        hist, _ = np.histogram(frame[..., channel], bins=bins,
                               range=(0, 256))
        histograms.append(hist)
    out = np.concatenate(histograms).astype(np.float64)
    total = out.sum()
    return out / total if total > 0 else out


def histogram_differences(video: VideoSegment, bins: int = 8) -> np.ndarray:
    """L1 difference between consecutive frame histograms, ``(T - 1,)``."""
    hists = [color_histogram(video.frame(t), bins)
             for t in range(video.num_frames)]
    return np.array([
        float(np.abs(hists[t + 1] - hists[t]).sum())
        for t in range(video.num_frames - 1)
    ])


def detect_shot_boundaries(video: VideoSegment,
                           config: ShotDetectorConfig | None = None
                           ) -> list[int]:
    """Frame indices where a new shot starts (excluding frame 0).

    A boundary at ``t`` means frames ``t-1`` and ``t`` belong to
    different shots.
    """
    config = config or ShotDetectorConfig()
    if video.num_frames < 2:
        return []
    diffs = histogram_differences(video, config.bins)
    boundaries: list[int] = []
    last_cut = 0
    for t, diff in enumerate(diffs, start=1):
        if diff > config.threshold and t - last_cut >= config.min_shot_length:
            boundaries.append(t)
            last_cut = t
    return boundaries


def split_into_shots(video: VideoSegment,
                     config: ShotDetectorConfig | None = None
                     ) -> list[VideoSegment]:
    """Parse a video into its shots (each at least one frame long)."""
    boundaries = detect_shot_boundaries(video, config)
    starts = [0] + boundaries
    stops = boundaries + [video.num_frames]
    return [video.slice(a, b) for a, b in zip(starts, stops)]
