"""Terminal-friendly visualization helpers.

The paper's Figures 1-3 show frames, segmentations and STRGs; these
helpers give a dependency-free approximation for REPL and example use:
ASCII renderings of label images and trajectory sets, and a one-line
textual summary of a RAG.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.rag import RegionAdjacencyGraph

#: Glyphs cycled over regions / trajectories.
_GLYPHS = "#@%*+=o·:ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def render_label_image(labels: np.ndarray, max_width: int = 72) -> str:
    """ASCII rendering of a segmentation label image.

    Each region id gets a glyph; the image is downsampled to fit
    ``max_width`` columns.
    """
    labels = np.asarray(labels)
    if labels.ndim != 2:
        raise InvalidParameterError(
            f"label image must be 2-D, got shape {labels.shape}"
        )
    h, w = labels.shape
    step = max(1, int(np.ceil(w / max_width)))
    sampled = labels[::step * 2, ::step]  # terminal cells are ~2x tall
    ids = {int(v): i for i, v in enumerate(np.unique(sampled))}
    lines = []
    for row in sampled:
        lines.append("".join(
            _GLYPHS[ids[int(v)] % len(_GLYPHS)] for v in row
        ))
    return "\n".join(lines)


def render_trajectories(ogs: Sequence, width: int = 64, height: int = 24,
                        bounds: tuple[float, float, float, float] | None = None
                        ) -> str:
    """ASCII plot of a set of OG trajectories on a shared canvas.

    ``bounds`` is ``(x_min, y_min, x_max, y_max)``; by default the union
    bounding box of all trajectories.  Each OG gets a glyph; its start
    point is marked ``S``.
    """
    if not ogs:
        raise InvalidParameterError("need at least one trajectory")
    if width < 2 or height < 2:
        raise InvalidParameterError("canvas must be at least 2x2")
    all_xy = np.vstack([np.asarray(getattr(og, "values", og))[:, :2]
                        for og in ogs])
    if bounds is None:
        x0, y0 = all_xy.min(axis=0)
        x1, y1 = all_xy.max(axis=0)
    else:
        x0, y0, x1, y1 = bounds
    x_span = max(x1 - x0, 1e-9)
    y_span = max(y1 - y0, 1e-9)
    canvas = [[" "] * width for _ in range(height)]
    for i, og in enumerate(ogs):
        glyph = _GLYPHS[i % len(_GLYPHS)]
        xy = np.asarray(getattr(og, "values", og))[:, :2]
        for j, (x, y) in enumerate(xy):
            col = int((x - x0) / x_span * (width - 1))
            row = int((y - y0) / y_span * (height - 1))
            if 0 <= row < height and 0 <= col < width:
                canvas[row][col] = "S" if j == 0 else glyph
    return "\n".join("".join(row) for row in canvas)


def describe_rag(rag: RegionAdjacencyGraph, top: int = 5) -> list[str]:
    """Textual summary of a RAG: counts plus its largest regions."""
    lines = [
        f"RAG(frame={rag.frame_index}): {len(rag)} regions, "
        f"{rag.number_of_edges()} spatial edges"
    ]
    by_size = sorted(rag.nodes(), key=lambda n: -rag.node_attrs(n).size)
    for node in by_size[:top]:
        attrs = rag.node_attrs(node)
        r, g, b = (int(c) for c in attrs.color)
        lines.append(
            f"  region {node}: {attrs.size} px, color=({r},{g},{b}), "
            f"centroid=({attrs.centroid[0]:.1f}, {attrs.centroid[1]:.1f}), "
            f"degree={rag.degree(node)}"
        )
    return lines
