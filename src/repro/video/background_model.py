"""Background-model segmentation (background subtraction).

The paper's reference [22] (Oh, Hua & Liang) detects scene content by
*background tracking*; for static surveillance cameras the classical
realization is a running background model: the per-pixel temporal median
of the frames is the background, and pixels deviating beyond a threshold
are foreground.  :class:`BackgroundSubtractionSegmenter` packages this as
a :class:`~repro.video.segmentation.Segmenter`, labeling the background
as one region and each connected foreground blob as its own region —
often a better fit for surveillance streams than color segmentation,
and a drop-in alternative in the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidParameterError, SegmentationError
from repro.video.frames import VideoSegment
from repro.video.segmentation import (
    Segmenter,
    _connected_components,
    _merge_small_regions,
)


@dataclass
class BackgroundSubtractionSegmenter(Segmenter):
    """Segment frames against a fitted per-pixel median background.

    Call :meth:`fit` with a video (or frame stack) before segmenting.
    ``threshold`` is the per-pixel color distance separating foreground
    from background; ``min_region_size`` prunes speckle blobs.
    """

    threshold: float = 30.0
    min_region_size: int = 20
    max_model_frames: int = 50
    _background: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise InvalidParameterError(
                f"threshold must be positive, got {self.threshold}"
            )
        if self.min_region_size < 1:
            raise InvalidParameterError("min_region_size must be >= 1")
        if self.max_model_frames < 1:
            raise InvalidParameterError("max_model_frames must be >= 1")

    def fit(self, video: VideoSegment | np.ndarray
            ) -> "BackgroundSubtractionSegmenter":
        """Estimate the background as the per-pixel temporal median.

        At most ``max_model_frames`` evenly spaced frames are used.
        Returns ``self`` for chaining.
        """
        frames = video.frames if isinstance(video, VideoSegment) else np.asarray(video)
        if frames.ndim != 4 or frames.shape[3] != 3:
            raise SegmentationError(
                f"expected (T, H, W, 3) frames, got shape {frames.shape}"
            )
        step = max(1, frames.shape[0] // self.max_model_frames)
        sample = frames[::step].astype(np.float64)
        self._background = np.median(sample, axis=0)
        return self

    @property
    def background_image(self) -> np.ndarray:
        """The fitted background frame (float64 ``(H, W, 3)``)."""
        if self._background is None:
            raise SegmentationError("segmenter not fitted; call fit() first")
        return self._background

    def foreground_mask(self, image: np.ndarray) -> np.ndarray:
        """Boolean mask of pixels deviating from the background model."""
        background = self.background_image
        image = np.asarray(image, dtype=np.float64)
        if image.shape != background.shape:
            raise SegmentationError(
                f"frame shape {image.shape} does not match fitted "
                f"background {background.shape}"
            )
        diff = np.sqrt(np.sum((image - background) ** 2, axis=2))
        return diff > self.threshold

    def segment(self, image: np.ndarray) -> np.ndarray:
        """Label image: background = one region, each blob its own region."""
        mask = self.foreground_mask(image)
        # Component-label the foreground only: feed the mask as a feature
        # image where background pixels share one value and foreground
        # pixels another, then split foreground into 4-connected blobs.
        features = np.asarray(image, dtype=np.float64).copy()
        features[~mask] = 0.0
        # Hard-separate foreground from background in feature space.
        features[mask] += 1e4
        labels = _connected_components(features, self.threshold)
        # Force all background pixels into a single region id (disconnected
        # background areas, e.g. enclosed by foreground, must still merge).
        if np.any(~mask):
            bg_ids = np.unique(labels[~mask])
            merged_id = labels.max() + 1
            labels[np.isin(labels, bg_ids)] = merged_id
        _, compact = np.unique(labels.ravel(), return_inverse=True)
        labels = compact.reshape(labels.shape).astype(np.int64)
        return _merge_small_regions(
            labels, np.asarray(image, dtype=np.float64), self.min_region_size
        )
